(* Seeded scale-corpus generator.

   Emits a deterministic multi-file Fortran program: file 0 holds the main
   program, every other PU is a subroutine taking (data array, depth) and
   chained into per-file call segments, with optional back-edges (bounded
   recursion -> call-graph SCCs) and cross-file edges.  A configurable
   fraction of PUs subscript the data array through an integer index array
   [b(x(i))], annotated with index-array property directives drawn from a
   small archetype set:

   - exact:      x(i) = i             -> monotonic injective bounded(1,E)
   - boxed:      x(i) = mod(3i,E)+1   -> bounded(1,E)
   - inspector:  x(i) = i + c         -> monotonic only (no bounds; the top
                                         c iterations really go out of
                                         bounds -> runtime faults the
                                         inspector entry must cover)
   - undeclared: x(i) = mod(5i,E)+1   -> no directive (MESSY status quo)

   Everything derives from a splitmix64 stream keyed on the seed: the same
   config yields byte-identical files, which is what lets the generated
   corpus serve as a pinned benchmark workload.  No OCaml [Random],
   clock, or hashtable-order dependence anywhere. *)

type config = {
  g_seed : int;
  g_files : int;
  g_pus_per_file : int;
  g_dag_depth : int;
  g_scc_density : float;
  g_loop_depth : int;
  g_ext_min : int;
  g_ext_max : int;
  g_sparsity : float;
  g_oob : float;
  g_undeclared : float;
}

let default =
  {
    g_seed = 42;
    g_files = 8;
    g_pus_per_file = 4;
    g_dag_depth = 3;
    g_scc_density = 0.25;
    g_loop_depth = 2;
    g_ext_min = 16;
    g_ext_max = 40;
    g_sparsity = 0.6;
    g_oob = 0.15;
    g_undeclared = 0.2;
  }

let standard () = { default with g_files = 201; g_pus_per_file = 10 }

(* ------------------------------------------------------------------ *)
(* splitmix64 — hoisted to [Numeric.Splitmix]; local aliases keep the
   call sites below unchanged *)

let rng_make = Numeric.Splitmix.make
let rand_int = Numeric.Splitmix.rand_int
let chance = Numeric.Splitmix.chance

(* ------------------------------------------------------------------ *)
(* Program plan *)

type archetype = Exact | Boxed | Inspector | Undeclared

type pu_plan = {
  pp_name : string;
  pp_sparse : archetype option;
  pp_stride_loop : bool;
  pp_chain_next : string option;   (* forward edge within the segment *)
  pp_back_edge : string option;    (* SCC back-edge to the predecessor *)
  pp_cross_edge : string option;   (* edge into the next file's head *)
}

type file_plan = {
  fp_name : string;
  fp_ext : int;
  fp_pus : pu_plan list;  (* subroutines only; main is rendered separately *)
}

let sub_name k j = Printf.sprintf "s%d_%d" k j
let head_positions ~start ~count ~depth =
  let rec go acc j = if j >= start + count then List.rev acc
    else go (j :: acc) (j + depth)
  in
  go [] start

let plan cfg =
  if cfg.g_files < 1 then invalid_arg "Gen: need at least one file";
  if cfg.g_pus_per_file < 2 then invalid_arg "Gen: need at least two PUs per file";
  if cfg.g_dag_depth < 1 then invalid_arg "Gen: dag depth must be positive";
  if cfg.g_ext_min < 8 || cfg.g_ext_max < cfg.g_ext_min then
    invalid_arg "Gen: bad extent range";
  let r = rng_make cfg.g_seed in
  (* pass 1: per-file extents (cross-file edges need them all up front) *)
  let exts =
    Array.init cfg.g_files (fun _ ->
        cfg.g_ext_min + rand_int r (cfg.g_ext_max - cfg.g_ext_min + 1))
  in
  (* pass 2: per-PU structure, in deterministic file-major order *)
  let archetype r cfg =
    if chance r cfg.g_oob then Inspector
    else if chance r cfg.g_undeclared then Undeclared
    else if rand_int r 2 = 0 then Exact
    else Boxed
  in
  let files =
    List.init cfg.g_files (fun k ->
        let start = if k = 0 then 1 else 0 in
        let count = cfg.g_pus_per_file - start in
        let last = start + count - 1 in
        let seg_len j = cfg.g_dag_depth - ((j - start) mod cfg.g_dag_depth) in
        let pus =
          List.init count (fun o ->
              let j = start + o in
              let sparse =
                if chance r cfg.g_sparsity then Some (archetype r cfg) else None
              in
              let stride_loop = chance r 0.4 in
              let chain_next =
                if seg_len j > 1 && j < last then Some (sub_name k (j + 1))
                else None
              in
              let back_edge =
                (* only from a segment continuation back to its predecessor *)
                if (j - start) mod cfg.g_dag_depth > 0
                   && chance r cfg.g_scc_density
                then Some (sub_name k (j - 1))
                else None
              in
              let cross_edge =
                if j = last && k + 1 < cfg.g_files
                   && exts.(k) >= exts.(k + 1)
                   && chance r 0.5
                then Some (sub_name (k + 1) (if k + 1 = 0 then 1 else 0))
                else None
              in
              {
                pp_name = sub_name k j;
                pp_sparse = sparse;
                pp_stride_loop = stride_loop;
                pp_chain_next = chain_next;
                pp_back_edge = back_edge;
                pp_cross_edge = cross_edge;
              })
        in
        { fp_name = Printf.sprintf "gen_%03d.f" k; fp_ext = exts.(k); fp_pus = pus })
  in
  (exts, files)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let bpf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let render_call b callee depth_expr =
  bpf b "      if (d .gt. 0) then\n";
  bpf b "        call %s(b, %s)\n" callee depth_expr;
  bpf b "      endif\n"

let render_sub b cfg ~ext (p : pu_plan) =
  (* "s<k>_<j>" -> "x<k>_<j>" *)
  let x = "x" ^ String.sub p.pp_name 1 (String.length p.pp_name - 1) in
  bpf b "      subroutine %s(b, d)\n" p.pp_name;
  bpf b "      real b(1:%d)\n" ext;
  bpf b "      integer d, i\n";
  (match p.pp_sparse with
  | None -> ()
  | Some a ->
    (* a local: the fill and the access live in the same PU, and a local
       index array does not propagate into every transitive caller's
       access table the way a COMMON would (the scale corpus would blow
       up quadratically otherwise) *)
    bpf b "      integer %s(1:%d)\n" x ext;
    (match a with
    | Exact ->
      bpf b "!$uhc index %s monotonic injective bounded(1,%d)\n" x ext
    | Boxed -> bpf b "!$uhc index %s bounded(1,%d)\n" x ext
    | Inspector -> bpf b "!$uhc index %s monotonic\n" x
    | Undeclared -> ()));
  if cfg.g_loop_depth > 1 then begin
    let names =
      List.init (cfg.g_loop_depth - 1) (fun i -> Printf.sprintf "j%d" i)
    in
    bpf b "      integer %s\n" (String.concat ", " names)
  end;
  (* index-array fill + sparse access *)
  (match p.pp_sparse with
  | None -> ()
  | Some a ->
    bpf b "      do i = 1, %d\n" ext;
    (match a with
    | Exact -> bpf b "        %s(i) = i\n" x
    | Boxed -> bpf b "        %s(i) = mod(i * 3, %d) + 1\n" x ext
    | Inspector -> bpf b "        %s(i) = i + 2\n" x
    | Undeclared -> bpf b "        %s(i) = mod(i * 5, %d) + 1\n" x ext);
    bpf b "      end do\n";
    bpf b "      do i = 1, %d\n" ext;
    bpf b "        b(%s(i)) = b(%s(i)) + 1.0\n" x x;
    bpf b "      end do\n");
  (* dense nest of the configured depth *)
  for l = 0 to cfg.g_loop_depth - 2 do
    bpf b "%s      do j%d = 1, 2\n" (String.make (2 * l) ' ') l
  done;
  let pad = String.make (2 * max 0 (cfg.g_loop_depth - 1)) ' ' in
  bpf b "%s      do i = 1, %d\n" pad ext;
  bpf b "%s        b(i) = b(i) * 0.5 + 1.0\n" pad;
  bpf b "%s      end do\n" pad;
  for l = cfg.g_loop_depth - 2 downto 0 do
    bpf b "%s      end do\n" (String.make (2 * l) ' ')
  done;
  if p.pp_stride_loop then begin
    bpf b "      do i = 2, %d, 2\n" ext;
    bpf b "        b(i) = b(i) + 2.0\n";
    bpf b "      end do\n"
  end;
  Option.iter (fun c -> render_call b c "d - 1") p.pp_chain_next;
  Option.iter (fun c -> render_call b c "d - 2") p.pp_back_edge;
  Option.iter (fun c -> render_call b c "d - 1") p.pp_cross_edge;
  bpf b "      end\n\n"

let render_main b cfg exts =
  bpf b "      program main\n";
  Array.iteri (fun k e -> bpf b "      real w%d(1:%d)\n" k e) exts;
  bpf b "      integer i\n";
  bpf b "      do i = 1, %d\n" exts.(0);
  bpf b "        w0(i) = 0.0\n";
  bpf b "      end do\n";
  Array.iteri
    (fun k _ ->
      let start = if k = 0 then 1 else 0 in
      let count = cfg.g_pus_per_file - start in
      List.iter
        (fun h -> bpf b "      call %s(w%d, %d)\n" (sub_name k h) k cfg.g_dag_depth)
        (head_positions ~start ~count ~depth:cfg.g_dag_depth))
    exts;
  bpf b "      print *, w0(1)\n";
  bpf b "      end\n\n"

let generate cfg =
  let exts, files = plan cfg in
  List.mapi
    (fun k (fp : file_plan) ->
      let b = Buffer.create 4096 in
      if k = 0 then render_main b cfg exts;
      List.iter (render_sub b cfg ~ext:fp.fp_ext) fp.fp_pus;
      (fp.fp_name, Buffer.contents b))
    files

(* ------------------------------------------------------------------ *)

let pu_count cfg = cfg.g_files * cfg.g_pus_per_file

let describe cfg =
  Printf.sprintf
    "seed=%d files=%d pus=%d dag=%d scc=%.2f nest=%d ext=[%d,%d] sparsity=%.2f oob=%.2f undeclared=%.2f"
    cfg.g_seed cfg.g_files (pu_count cfg) cfg.g_dag_depth cfg.g_scc_density
    cfg.g_loop_depth cfg.g_ext_min cfg.g_ext_max cfg.g_sparsity cfg.g_oob
    cfg.g_undeclared
