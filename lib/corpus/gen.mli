(** Seeded, fully deterministic scale-corpus generator.

    Produces a multi-file Fortran program: [main] in file 0 calls the head
    of every call-chain segment; subroutines chain within their file (DAG
    depth), optionally back-call their predecessor under a depth guard
    (bounded recursion: call-graph SCCs) or jump into the next file.  A
    configurable fraction of PUs access the shared data array through an
    integer index array, with declared index-array properties drawn from
    four archetypes — exact (monotonic injective bounded), boxed (bounded
    only), inspector (monotonic only, genuinely out of bounds at runtime)
    and undeclared.

    All randomness comes from a splitmix64 stream keyed on [g_seed]: the
    same config yields byte-identical files on every host, so a pinned
    config can serve as a benchmark workload and as the subject of the
    differential interpreter harness. *)

type config = {
  g_seed : int;
  g_files : int;          (** source-file count; file 0 also holds [main] *)
  g_pus_per_file : int;   (** PUs per file, [main] included (>= 2) *)
  g_dag_depth : int;      (** call-chain segment length; also the depth
                              budget [main] passes to each segment head *)
  g_scc_density : float;  (** probability of a back-edge per chain link *)
  g_loop_depth : int;     (** dense loop-nest depth (>= 1) *)
  g_ext_min : int;        (** minimum per-file array extent (>= 8) *)
  g_ext_max : int;
  g_sparsity : float;     (** fraction of PUs with an [b(x(i))] access *)
  g_oob : float;          (** of those, fraction whose index array really
                              leaves the extents (inspector archetype) *)
  g_undeclared : float;   (** of the rest, fraction with no directive *)
}

val default : config
(** Small smoke-scale config (seed 42, 8 files x 4 PUs). *)

val standard : unit -> config
(** The pinned scale workload: seed 42, 201 files x 10 PUs (2010 PUs). *)

val generate : config -> (string * string) list
(** [(filename, contents)] pairs, file-major deterministic order.
    @raise Invalid_argument on degenerate configs (no files, < 2 PUs per
    file, extents below 8, empty extent range, non-positive DAG depth). *)

val pu_count : config -> int
(** [g_files * g_pus_per_file] — the PU total of the generated program. *)

val describe : config -> string
(** One-line human-readable config summary (stable; used by [bench gen]). *)
