let fig1_f =
  ( "fig1.f",
    {|      program fig1
      integer, dimension :: a(1:200, 1:200)
      integer m
      m = 50
      call add(a, m)
      end

      subroutine add(a, m)
      integer, dimension :: a(1:200, 1:200)
      integer m, j
      do j = 1, m
        call p1(a, j)
        call p2(a, j)
      end do
      end subroutine

      subroutine p1(a, j)
      integer a(1:200, 1:200)
      integer j, i, k
      do i = 1, 100
        do k = 1, 100
          a(i, k) = i + k + j
        end do
      end do
      end

      subroutine p2(a, j)
      integer a(1:200, 1:200)
      integer j, i, k, s
      s = 0
      do i = 101, 200
        do k = 101, 200
          s = s + a(i, k)
        end do
      end do
      end
|} )

let matrix_c =
  ( "matrix.c",
    {|#include <stdio.h>
#define N 20

int aarr[N];

void fill() {
  int i;
  for (i = 0; i <= 7; i++) {
    aarr[i] = i;
  }
  for (i = 0; i <= 7; i++) {
    aarr[i + 1] = aarr[i];
  }
}

int main() {
  int i, s;
  s = 0;
  fill();
  for (i = 0; i <= 7; i++) {
    s = s + aarr[i];
  }
  for (i = 2; i <= 6; i += 2) {
    s = s + aarr[i];
  }
  printf("%d\n", s);
  return 0;
}
|} )

let stride_f =
  ( "stride.f",
    {|      program stride
      integer b(1:64)
      integer idx(1:64)
      integer i, n
      n = 32
      do i = 64, 2, -2
        b(i) = i
      end do
      do i = 1, n
        b(i) = b(i) + 1
      end do
      do i = 1, 10
        b(idx(i)) = 0
      end do
      end
|} )

let caf_f =
  ( "caf.f",
    {|      program cafhalo
      double precision halo(1:32)[*]
      double precision work(1:32)[*]
      integer i, me, np
      me = this_image()
      np = num_images()
      do i = 1, 32
        work(i) = i * me
      end do
      if (me .lt. np) then
        do i = 1, 8
          halo(i)[me + 1] = work(i)
        end do
      end if
      if (me .lt. np) then
        do i = 1, 8
          work(i + 24) = work(i)[me + 1]
        end do
      end if
      print *, work(1)
      end
|} )

let all_small = [ fig1_f; matrix_c; stride_f; caf_f ]
