(** Embedded example programs — the workloads of the paper's evaluation.

    Each value is [(filename, contents)] ready for
    [Lang.Frontend.load ~files].  [matrix_c] reproduces the source of
    Fig 10 (the [aarr] example behind Figs 6-9); [fig1_f] the
    interprocedural example of Fig 1; {!Nas_lu.files} the NAS-LU-shaped
    program behind Figs 11-14 and Tables II-IV. *)

val fig1_f : string * string
(** Fig 1: P1 defines A(1:100,1:100), P2 uses A(101:200,101:200) inside the
    same loop — the motivating parallelizable pattern. *)

val matrix_c : string * string
(** Fig 10: int aarr[20], two DEF loops ([0:7] and [1:8]) and three USE
    sites ([0:7] twice, strided [2:6:2] once) — regenerates Fig 9's rows,
    including the copyin(aarr[2:7]) advice and the resize-to-9 advice. *)

val stride_f : string * string
(** Negative and non-unit strides, symbolic bounds, and a messy subscript:
    exercises the bound kinds (CONST / IVAR / MESSY) in one file. *)

val caf_f : string * string
(** Coarray Fortran halo exchange: remote writes [halo(i)[me+1]] and reads
    [work(i)[me+1]] — exercises the paper's future-work PGAS analysis
    (RDEF/RUSE modes). *)

val all_small : (string * string) list
