(* A NAS-LU-shaped MiniF program: the workload behind the paper's Figs
   11-14 and Tables II-III.  The solver arithmetic is simplified, but the
   paper-relevant facts are faithful:

   - 24 procedures with the call structure of NPB 3.3 LU (serial);
   - u/rsd/frct are COMMON double arrays u(5,ny,nz,nx) -> row-major
     [nx|nz|ny|5], class A = [64|65|65|5], 1352000 elements, 10816000 bytes;
   - verify has formal double arrays xcr(5)/xce(5) with exactly 4 USE
     references each (one loop with 1, a second loop with 3 -> Table II,
     access density 10) and exactly 9 DEFs of the global CLASS char;
   - rhs contains exactly 110 USE references to u (Table III / Fig 14),
     including the corner loop that touches u(1:4, 1:10, 1:5, 1:3) with the
     first subscript accessed separately -> regions
     (1:3, 1:5, 1:10, m:m) in row-major display, whose union drives the
     copyin(u(1:3,1:5,1:10,1:4)) advice of Case 2. *)

type grid = { nx : int; ny : int; nz : int }

let grid_of_class = function
  | 'S' -> { nx = 12; ny = 13; nz = 13 }
  | 'W' -> { nx = 33; ny = 34; nz = 34 }
  | 'A' -> { nx = 64; ny = 65; nz = 65 }
  | 'B' -> { nx = 102; ny = 103; nz = 103 }
  | 'C' -> { nx = 162; ny = 163; nz = 163 }
  | c -> invalid_arg (Printf.sprintf "Nas_lu.grid_of_class: unknown class %c" c)

let classes = [ 'S'; 'W'; 'A'; 'B'; 'C' ]

(* the COMMON header repeated in each program unit (NPB uses include files
   the same way) *)
let header g =
  Printf.sprintf
    {|      parameter (nx = %d, ny = %d, nz = %d)
      double precision u(5, ny, nz, nx)
      double precision rsd(5, ny, nz, nx)
      double precision frct(5, ny, nz, nx)
      double precision flux(5, ny)
      double precision rsdnm(5), errnm(5)
      character class(1)
      double precision c1, c2, tx2, ty2, tz2, dssp, dt, omega, frc
      integer itmax
      double precision tstart(64), telapsed(64)
      integer ticks
      common /cvar/ u, rsd, frct, flux, class
      common /cnorm/ rsdnm, errnm
      common /coef/ c1, c2, tx2, ty2, tz2, dssp, dt, omega, frc
      common /cprm/ itmax
      common /ctim/ tstart, telapsed, ticks
|}
    g.nx g.ny g.nz

let applu_f g =
  ( "applu.f",
    Printf.sprintf
      {|      program applu
%s      logical verified
      double precision maxtime
      call read_input
      call domain
      call setcoeff
      call setbv
      call setiv
      call erhs
      call ssor
      call error
      call pintgr
      call verify(rsdnm, errnm, frc, verified)
      call timer_read(1, maxtime)
      call print_results(maxtime, verified)
      end
|}
      (header g) )

let init_f g =
  ( "init.f",
    Printf.sprintf
      {|      subroutine read_input
%s      itmax = 250
      dt = 2.0d0
      omega = 1.2d0
      print *, itmax, dt, omega
      end

      subroutine domain
%s      if (nx .lt. 4) then
        print *, 'domain too small'
        stop
      end if
      if (nx .gt. 1020) then
        print *, 'domain too large'
        stop
      end if
      end

      subroutine setcoeff
%s      c1 = 1.40d0
      c2 = 0.40d0
      tx2 = 1.0d0 / (2.0d0 * dt)
      ty2 = tx2
      tz2 = tx2
      dssp = 1.0d0 / 4.0d0
      end

      subroutine setbv
%s      integer i, j, k, m
      double precision utmp(5)
      do j = 1, nz
        do i = 1, ny
          call exact(i, j, 1, utmp)
          do m = 1, 5
            u(m, i, j, 1) = utmp(m)
          end do
          call exact(i, j, nx, utmp)
          do m = 1, 5
            u(m, i, j, nx) = utmp(m)
          end do
        end do
      end do
      do k = 1, nx
        do i = 1, ny
          call exact(i, 1, k, utmp)
          do m = 1, 5
            u(m, i, 1, k) = utmp(m)
          end do
          call exact(i, nz, k, utmp)
          do m = 1, 5
            u(m, i, nz, k) = utmp(m)
          end do
        end do
      end do
      do k = 1, nx
        do j = 1, nz
          call exact(1, j, k, utmp)
          do m = 1, 5
            u(m, 1, j, k) = utmp(m)
          end do
          call exact(ny, j, k, utmp)
          do m = 1, 5
            u(m, ny, j, k) = utmp(m)
          end do
        end do
      end do
      end

      subroutine setiv
%s      integer i, j, k, m
      double precision utmp(5)
      do k = 2, nx - 1
        do j = 2, nz - 1
          do i = 2, ny - 1
            call exact(i, j, k, utmp)
            do m = 1, 5
              u(m, i, j, k) = utmp(m)
            end do
          end do
        end do
      end do
      end

      subroutine erhs
%s      integer i, j, k, m
      do k = 1, nx
        do j = 1, nz
          do i = 1, ny
            do m = 1, 5
              frct(m, i, j, k) = 0.0d0
            end do
          end do
        end do
      end do
      do k = 2, nx - 1
        do j = 2, nz - 1
          do i = 2, ny - 1
            do m = 1, 5
              frct(m, i, j, k) = frct(m, i, j, k)   &
                + dssp * (u(m, i - 1, j, k) - 2.0d0 * u(m, i, j, k)   &
                + u(m, i + 1, j, k))
            end do
          end do
        end do
      end do
      end
|}
      (header g) (header g) (header g) (header g) (header g) (header g) )

let exact_f g =
  ( "exact.f",
    Printf.sprintf
      {|      subroutine exact(i, j, k, utmp)
%s      integer i, j, k, m
      double precision utmp(5)
      do m = 1, 5
        utmp(m) = 1.0d0 + 0.01d0 * i + 0.02d0 * j + 0.03d0 * k + m
      end do
      end
|}
      (header g) )

(* exactly 110 USE references to u (see the module comment) *)
let rhs_f g =
  ( "rhs.f",
    Printf.sprintf
      {|      subroutine rhs
%s      integer i, j, k, m
      double precision u21, q, tmp, u21i, u31i, u41i, sum1
c     initialize the residual from the forcing term (no u references)
      do k = 1, nx
        do j = 1, nz
          do i = 1, ny
            do m = 1, 5
              rsd(m, i, j, k) = - frct(m, i, j, k)
            end do
          end do
        end do
      end do
c     xi-direction flux (15 u refs)
      do k = 2, nx - 1
        do j = 2, nz - 1
          do i = 1, ny
            flux(1, i) = u(2, i, j, k)
            u21 = u(2, i, j, k) / u(1, i, j, k)
            q = 0.50d0 * (u(2, i, j, k) * u(2, i, j, k)   &
              + u(3, i, j, k) * u(3, i, j, k)   &
              + u(4, i, j, k) * u(4, i, j, k)) / u(1, i, j, k)
            flux(2, i) = u(2, i, j, k) * u21 + c2 * (u(5, i, j, k) - q)
            flux(3, i) = u(3, i, j, k) * u21
            flux(4, i) = u(4, i, j, k) * u21
            flux(5, i) = (c1 * u(5, i, j, k) - c2 * q) * u21
          end do
          do i = 2, ny - 1
            do m = 1, 5
              rsd(m, i, j, k) = rsd(m, i, j, k)   &
                - tx2 * (flux(m, i + 1) - flux(m, i - 1))
            end do
          end do
c     xi-direction viscous contributions (4 u refs)
          do i = 2, ny
            tmp = 1.0d0 / u(1, i, j, k)
            u21i = tmp * u(2, i, j, k)
            u31i = tmp * u(3, i, j, k)
            u41i = tmp * u(4, i, j, k)
            flux(2, i) = flux(2, i) + u21i
            flux(3, i) = flux(3, i) + u31i
            flux(4, i) = flux(4, i) + u41i
          end do
c     xi-direction fourth-order dissipation (19 u refs)
          do m = 1, 5
            rsd(m, 2, j, k) = rsd(m, 2, j, k) - dssp *   &
              (5.0d0 * u(m, 2, j, k) - 4.0d0 * u(m, 3, j, k)   &
               + u(m, 4, j, k))
            rsd(m, 3, j, k) = rsd(m, 3, j, k) - dssp *   &
              (-4.0d0 * u(m, 2, j, k) + 6.0d0 * u(m, 3, j, k)   &
               - 4.0d0 * u(m, 4, j, k) + u(m, 5, j, k))
          end do
          do i = 4, ny - 3
            do m = 1, 5
              rsd(m, i, j, k) = rsd(m, i, j, k) - dssp *   &
                (u(m, i - 2, j, k) - 4.0d0 * u(m, i - 1, j, k)   &
                 + 6.0d0 * u(m, i, j, k) - 4.0d0 * u(m, i + 1, j, k)   &
                 + u(m, i + 2, j, k))
            end do
          end do
          do m = 1, 5
            rsd(m, ny - 2, j, k) = rsd(m, ny - 2, j, k) - dssp *   &
              (u(m, ny - 4, j, k) - 4.0d0 * u(m, ny - 3, j, k)   &
               + 6.0d0 * u(m, ny - 2, j, k) - 4.0d0 * u(m, ny - 1, j, k))
            rsd(m, ny - 1, j, k) = rsd(m, ny - 1, j, k) - dssp *   &
              (u(m, ny - 3, j, k) - 4.0d0 * u(m, ny - 2, j, k)   &
               + 5.0d0 * u(m, ny - 1, j, k))
          end do
        end do
      end do
c     eta-direction flux (15 u refs) and dissipation (19 u refs)
      do k = 2, nx - 1
        do i = 2, ny - 1
          do j = 1, nz
            flux(1, j) = u(3, i, j, k)
            u21 = u(3, i, j, k) / u(1, i, j, k)
            q = 0.50d0 * (u(2, i, j, k) * u(2, i, j, k)   &
              + u(3, i, j, k) * u(3, i, j, k)   &
              + u(4, i, j, k) * u(4, i, j, k)) / u(1, i, j, k)
            flux(2, j) = u(2, i, j, k) * u21
            flux(3, j) = u(3, i, j, k) * u21 + c2 * (u(5, i, j, k) - q)
            flux(4, j) = u(4, i, j, k) * u21
            flux(5, j) = (c1 * u(5, i, j, k) - c2 * q) * u21
          end do
          do j = 2, nz - 1
            do m = 1, 5
              rsd(m, i, j, k) = rsd(m, i, j, k)   &
                - ty2 * (flux(m, j + 1) - flux(m, j - 1))
            end do
          end do
          do m = 1, 5
            rsd(m, i, 2, k) = rsd(m, i, 2, k) - dssp *   &
              (5.0d0 * u(m, i, 2, k) - 4.0d0 * u(m, i, 3, k)   &
               + u(m, i, 4, k))
            rsd(m, i, 3, k) = rsd(m, i, 3, k) - dssp *   &
              (-4.0d0 * u(m, i, 2, k) + 6.0d0 * u(m, i, 3, k)   &
               - 4.0d0 * u(m, i, 4, k) + u(m, i, 5, k))
          end do
          do j = 4, nz - 3
            do m = 1, 5
              rsd(m, i, j, k) = rsd(m, i, j, k) - dssp *   &
                (u(m, i, j - 2, k) - 4.0d0 * u(m, i, j - 1, k)   &
                 + 6.0d0 * u(m, i, j, k) - 4.0d0 * u(m, i, j + 1, k)   &
                 + u(m, i, j + 2, k))
            end do
          end do
          do m = 1, 5
            rsd(m, i, nz - 2, k) = rsd(m, i, nz - 2, k) - dssp *   &
              (u(m, i, nz - 4, k) - 4.0d0 * u(m, i, nz - 3, k)   &
               + 6.0d0 * u(m, i, nz - 2, k) - 4.0d0 * u(m, i, nz - 1, k))
            rsd(m, i, nz - 1, k) = rsd(m, i, nz - 1, k) - dssp *   &
              (u(m, i, nz - 3, k) - 4.0d0 * u(m, i, nz - 2, k)   &
               + 5.0d0 * u(m, i, nz - 1, k))
          end do
        end do
      end do
c     zeta-direction flux (15 u refs) and dissipation (19 u refs)
      do j = 2, nz - 1
        do i = 2, ny - 1
          do k = 1, nx
            flux(1, k) = u(4, i, j, k)
            u21 = u(4, i, j, k) / u(1, i, j, k)
            q = 0.50d0 * (u(2, i, j, k) * u(2, i, j, k)   &
              + u(3, i, j, k) * u(3, i, j, k)   &
              + u(4, i, j, k) * u(4, i, j, k)) / u(1, i, j, k)
            flux(2, k) = u(2, i, j, k) * u21
            flux(3, k) = u(3, i, j, k) * u21
            flux(4, k) = u(4, i, j, k) * u21 + c2 * (u(5, i, j, k) - q)
            flux(5, k) = (c1 * u(5, i, j, k) - c2 * q) * u21
          end do
          do k = 2, nx - 1
            do m = 1, 5
              rsd(m, i, j, k) = rsd(m, i, j, k)   &
                - tz2 * (flux(m, k + 1) - flux(m, k - 1))
            end do
          end do
          do m = 1, 5
            rsd(m, i, j, 2) = rsd(m, i, j, 2) - dssp *   &
              (5.0d0 * u(m, i, j, 2) - 4.0d0 * u(m, i, j, 3)   &
               + u(m, i, j, 4))
            rsd(m, i, j, 3) = rsd(m, i, j, 3) - dssp *   &
              (-4.0d0 * u(m, i, j, 2) + 6.0d0 * u(m, i, j, 3)   &
               - 4.0d0 * u(m, i, j, 4) + u(m, i, j, 5))
          end do
          do k = 4, nx - 3
            do m = 1, 5
              rsd(m, i, j, k) = rsd(m, i, j, k) - dssp *   &
                (u(m, i, j, k - 2) - 4.0d0 * u(m, i, j, k - 1)   &
                 + 6.0d0 * u(m, i, j, k) - 4.0d0 * u(m, i, j, k + 1)   &
                 + u(m, i, j, k + 2))
            end do
          end do
          do m = 1, 5
            rsd(m, i, j, nx - 2) = rsd(m, i, j, nx - 2) - dssp *   &
              (u(m, i, j, nx - 4) - 4.0d0 * u(m, i, j, nx - 3)   &
               + 6.0d0 * u(m, i, j, nx - 2) - 4.0d0 * u(m, i, j, nx - 1))
            rsd(m, i, j, nx - 1) = rsd(m, i, j, nx - 1) - dssp *   &
              (u(m, i, j, nx - 3) - 4.0d0 * u(m, i, j, nx - 2)   &
               + 5.0d0 * u(m, i, j, nx - 1))
          end do
        end do
      end do
c     inflow-corner checksum: the Case 2 loop (4 u refs, first subscript
c     accessed separately -> copyin(u(1:3,1:5,1:10,1:4)) advice)
      sum1 = 0.0d0
      do k = 1, 3
        do j = 1, 5
          do i = 1, 10
            sum1 = sum1 + u(1, i, j, k) + u(2, i, j, k)   &
              + u(3, i, j, k) + u(4, i, j, k)
          end do
        end do
      end do
      frc = frc + 0.0d0 * sum1
      end
|}
      (header g) )

let jac_f g =
  ( "jac.f",
    Printf.sprintf
      {|      subroutine jacld(kst)
%s      integer kst, i, j, m
      double precision d(5, 5)
      double precision tmp1
      do j = 2, nz - 1
        do i = 2, ny - 1
          tmp1 = 1.0d0 / u(1, i, j, kst)
          do m = 1, 5
            d(m, 1) = tmp1 * u(m, i, j, kst)
            d(m, 2) = tmp1 * u(m, i - 1, j, kst)
            d(m, 3) = tmp1 * u(m, i, j - 1, kst)
          end do
          rsd(1, i, j, kst) = rsd(1, i, j, kst) + d(1, 1) * omega
        end do
      end do
      end

      subroutine blts(kst)
%s      integer kst, i, j, m
      do j = 2, nz - 1
        do i = 2, ny - 1
          do m = 1, 5
            rsd(m, i, j, kst) = rsd(m, i, j, kst)   &
              - omega * (rsd(m, i - 1, j, kst) + rsd(m, i, j - 1, kst))
          end do
        end do
      end do
      end

      subroutine jacu(kst)
%s      integer kst, i, j, m
      double precision d(5, 5)
      double precision tmp1
      do j = nz - 1, 2, -1
        do i = ny - 1, 2, -1
          tmp1 = 1.0d0 / u(1, i, j, kst)
          do m = 1, 5
            d(m, 1) = tmp1 * u(m, i, j, kst)
            d(m, 2) = tmp1 * u(m, i + 1, j, kst)
            d(m, 3) = tmp1 * u(m, i, j + 1, kst)
          end do
          rsd(1, i, j, kst) = rsd(1, i, j, kst) + d(1, 1) * omega
        end do
      end do
      end

      subroutine buts(kst)
%s      integer kst, i, j, m
      do j = nz - 1, 2, -1
        do i = ny - 1, 2, -1
          do m = 1, 5
            rsd(m, i, j, kst) = rsd(m, i, j, kst)   &
              - omega * (rsd(m, i + 1, j, kst) + rsd(m, i, j + 1, kst))
          end do
        end do
      end do
      end
|}
      (header g) (header g) (header g) (header g) )

let ssor_f g =
  ( "ssor.f",
    Printf.sprintf
      {|      subroutine ssor
%s      integer i, j, k, m, istep
      double precision tmp
      double precision delunm(5)
      tmp = 1.0d0 / (omega * (2.0d0 - omega))
      call timer_clear(1)
      call rhs
      call l2norm(rsd, rsdnm)
      call timer_start(1)
      do istep = 1, itmax
        do k = 2, nx - 1
          call jacld(k)
          call blts(k)
        end do
        do k = nx - 1, 2, -1
          call jacu(k)
          call buts(k)
        end do
        do k = 2, nx - 1
          do j = 2, nz - 1
            do i = 2, ny - 1
              do m = 1, 5
                u(m, i, j, k) = u(m, i, j, k) + tmp * rsd(m, i, j, k)
              end do
            end do
          end do
        end do
        if (mod(istep, 10) .eq. 0) then
          call l2norm(rsd, delunm)
        end if
        call rhs
      end do
      call timer_stop(1)
      end
|}
      (header g) )

let l2norm_f g =
  ( "l2norm.f",
    Printf.sprintf
      {|      subroutine l2norm(v, sum)
%s      double precision v(5, ny, nz, nx)
      double precision sum(5)
      integer i, j, k, m
      do m = 1, 5
        sum(m) = 0.0d0
      end do
      do k = 2, nx - 1
        do j = 2, nz - 1
          do i = 2, ny - 1
            do m = 1, 5
              sum(m) = sum(m) + v(m, i, j, k) * v(m, i, j, k)
            end do
          end do
        end do
      end do
      do m = 1, 5
        sum(m) = sqrt(sum(m) / ((nx - 2) * (ny - 2) * (nz - 2)))
      end do
      end
|}
      (header g) )

let error_f g =
  ( "error.f",
    Printf.sprintf
      {|      subroutine error
%s      integer i, j, k, m
      double precision utmp(5)
      do m = 1, 5
        errnm(m) = 0.0d0
      end do
      do k = 2, nx - 1
        do j = 2, nz - 1
          do i = 2, ny - 1
            call exact(i, j, k, utmp)
            do m = 1, 5
              errnm(m) = errnm(m)   &
                + (utmp(m) - u(m, i, j, k)) * (utmp(m) - u(m, i, j, k))
            end do
          end do
        end do
      end do
      do m = 1, 5
        errnm(m) = sqrt(errnm(m) / ((nx - 2) * (ny - 2) * (nz - 2)))
      end do
      end
|}
      (header g) )

let pintgr_f g =
  ( "pintgr.f",
    Printf.sprintf
      {|      subroutine pintgr
%s      integer i, j
      double precision phi1(1:ny, 1:nz), phi2(1:ny, 1:nz)
      do j = 1, nz
        do i = 1, ny
          phi1(i, j) = c2 * (u(5, i, j, 1) - 0.5d0 * u(2, i, j, 1))
          phi2(i, j) = c2 * (u(5, i, j, 2) - 0.5d0 * u(2, i, j, 2))
        end do
      end do
      frc = 0.0d0
      do j = 1, nz - 1
        do i = 1, ny - 1
          frc = frc + phi1(i, j) + phi1(i + 1, j)   &
            + phi1(i, j + 1) + phi1(i + 1, j + 1)   &
            + phi2(i, j) + phi2(i + 1, j)   &
            + phi2(i, j + 1) + phi2(i + 1, j + 1)
        end do
      end do
      frc = frc * 0.25d0
      end
|}
      (header g) )

(* Table II: xcr/xce used once in the first loop and three times in the
   second -> 4 USE references each.  Exactly 9 DEFs of the global CLASS. *)
let verify_f g =
  ( "verify.f",
    Printf.sprintf
      {|      subroutine verify(xcr, xce, xci, verified)
%s      double precision xcr(5), xce(5), xci
      logical verified
      double precision xcrref(5), xceref(5), xciref
      double precision xcrdif(5), xcedif(5), xcidif
      double precision epsilon, dtref
      integer m
      epsilon = 1.0d-08
      class(1) = 'U'
      verified = .true.
      do m = 1, 5
        xcrref(m) = 1.0d0
        xceref(m) = 1.0d0
      end do
      xciref = 1.0d0
      if (nx .eq. 12) then
        class(1) = 'S'
        dtref = 5.0d-1
      end if
      if (nx .eq. 33) then
        class(1) = 'W'
        dtref = 1.5d-3
      end if
      if (nx .eq. 64) then
        class(1) = 'A'
        dtref = 2.0d0
      end if
      if (nx .eq. 102) then
        class(1) = 'B'
        dtref = 2.0d0
      end if
      if (nx .eq. 162) then
        class(1) = 'C'
        dtref = 2.0d0
      end if
      if (nx .eq. 408) then
        class(1) = 'D'
        dtref = 1.0d0
      end if
      if (nx .eq. 1020) then
        class(1) = 'E'
        dtref = 0.5d0
      end if
      if (dt .ne. dtref) then
        class(1) = 'U'
      end if
      do m = 1, 5
        xcrdif(m) = abs((xcr(m) - xcrref(m)) / xcrref(m))
        xcedif(m) = abs((xce(m) - xceref(m)) / xceref(m))
      end do
      xcidif = abs((xci - xciref) / xciref)
      do m = 1, 5
        if (xcrdif(m) .gt. epsilon) then
          verified = .false.
        end if
        print *, xcr(m), xcrref(m), xcrdif(m)
        if (xcr(m) .lt. 0.0d0) then
          print *, xcr(m)
        end if
        print *, xce(m), xceref(m), xcedif(m)
        if (xce(m) .lt. 0.0d0) then
          print *, xce(m)
        end if
      end do
      print *, xcidif
      end
|}
      (header g) )

let print_results_f g =
  ( "print_results.f",
    Printf.sprintf
      {|      subroutine print_results(maxtime, verified)
%s      double precision maxtime
      logical verified
      double precision mflops
      mflops = 1.0d-6 * itmax * (nx * ny * nz) / maxtime
      print *, nx, ny, nz
      print *, itmax, maxtime, mflops
      print *, verified
      end
|}
      (header g) )

let timers_f g =
  ( "timers.f",
    Printf.sprintf
      {|      subroutine timer_clear(n)
%s      integer n
      telapsed(n) = 0.0d0
      end

      subroutine timer_start(n)
%s      integer n
      double precision t
      call elapsed_time(t)
      tstart(n) = t
      end

      subroutine timer_stop(n)
%s      integer n
      double precision t
      call elapsed_time(t)
      telapsed(n) = telapsed(n) + (t - tstart(n))
      end

      subroutine timer_read(n, t)
%s      integer n
      double precision t
      t = telapsed(n)
      end

      subroutine elapsed_time(t)
%s      double precision t
      ticks = ticks + 1
      t = 1.0d-3 * ticks
      end
|}
      (header g) (header g) (header g) (header g) (header g) )

let files ?(cls = 'A') () =
  let g = grid_of_class cls in
  [
    applu_f g;
    init_f g;
    exact_f g;
    rhs_f g;
    jac_f g;
    ssor_f g;
    l2norm_f g;
    error_f g;
    pintgr_f g;
    verify_f g;
    print_results_f g;
    timers_f g;
  ]

let proc_names =
  [
    "applu"; "read_input"; "domain"; "setcoeff"; "setbv"; "setiv"; "erhs";
    "ssor"; "rhs"; "jacld"; "blts"; "jacu"; "buts"; "l2norm"; "error";
    "exact"; "pintgr"; "verify"; "print_results"; "timer_clear";
    "timer_start"; "timer_stop"; "timer_read"; "elapsed_time";
  ]
