(* Additional HPC workloads ("Our tool has been tested on many HPC
   applications", Section VII): a 2-D Jacobi relaxation, a blocked matrix
   multiply, and a 3-D heat stencil.  Each is small enough to interpret yet
   exhibits the access patterns the tool is about: disjoint read/write
   arrays, strided and shifted subscripts, interprocedural side effects. *)

let jacobi2d =
  ( "jacobi2d.f",
    {|      program jacobi2d
      parameter (n = 34)
      double precision grid(1:n, 1:n), next(1:n, 1:n)
      double precision diff
      common /jac/ grid, next
      integer step
      call jinit
      do step = 1, 10
        call sweep
        call jcopy(diff)
      end do
      print *, diff
      end

      subroutine jinit
      parameter (n = 34)
      double precision grid(1:n, 1:n), next(1:n, 1:n)
      common /jac/ grid, next
      integer i, j
      do j = 1, n
        do i = 1, n
          grid(i, j) = 0.0d0
          next(i, j) = 0.0d0
        end do
      end do
      do j = 1, n
        grid(1, j) = 1.0d0
        grid(n, j) = 1.0d0
      end do
      end

      subroutine sweep
      parameter (n = 34)
      double precision grid(1:n, 1:n), next(1:n, 1:n)
      common /jac/ grid, next
      integer i, j
      do j = 2, n - 1
        do i = 2, n - 1
          next(i, j) = 0.25d0 * (grid(i - 1, j) + grid(i + 1, j)   &
            + grid(i, j - 1) + grid(i, j + 1))
        end do
      end do
      end

      subroutine jcopy(diff)
      parameter (n = 34)
      double precision grid(1:n, 1:n), next(1:n, 1:n)
      common /jac/ grid, next
      double precision diff
      integer i, j
      diff = 0.0d0
      do j = 2, n - 1
        do i = 2, n - 1
          diff = diff + abs(next(i, j) - grid(i, j))
          grid(i, j) = next(i, j)
        end do
      end do
      end
|} )

let matmul =
  ( "matmul.f",
    {|      program matmul
      parameter (n = 24)
      double precision a(1:n, 1:n), b(1:n, 1:n), c(1:n, 1:n)
      integer i, j
      do j = 1, n
        do i = 1, n
          a(i, j) = 1.0d0 / (i + j)
          b(i, j) = i - j
          c(i, j) = 0.0d0
        end do
      end do
      call dgemm(a, b, c, n)
      print *, c(1, 1), c(n, n)
      end

      subroutine dgemm(a, b, c, n)
      double precision a(1:24, 1:24), b(1:24, 1:24), c(1:24, 1:24)
      integer n, i, j, k
      do j = 1, n
        do k = 1, n
          do i = 1, n
            c(i, j) = c(i, j) + a(i, k) * b(k, j)
          end do
        end do
      end do
      end
|} )

let heat3d =
  ( "heat3d.f",
    {|      program heat3d
      parameter (n = 10)
      double precision t0(1:n, 1:n, 1:n), t1(1:n, 1:n, 1:n)
      common /heat/ t0, t1
      integer step
      call hinit
      do step = 1, 4
        call hstep
        call hswap
      end do
      print *, t0(2, 2, 2)
      end

      subroutine hinit
      parameter (n = 10)
      double precision t0(1:n, 1:n, 1:n), t1(1:n, 1:n, 1:n)
      common /heat/ t0, t1
      integer i, j, k
      do k = 1, n
        do j = 1, n
          do i = 1, n
            t0(i, j, k) = 0.0d0
            t1(i, j, k) = 0.0d0
          end do
        end do
      end do
      t0(n / 2, n / 2, n / 2) = 100.0d0
      end

      subroutine hstep
      parameter (n = 10)
      double precision t0(1:n, 1:n, 1:n), t1(1:n, 1:n, 1:n)
      common /heat/ t0, t1
      integer i, j, k
      do k = 2, n - 1
        do j = 2, n - 1
          do i = 2, n - 1
            t1(i, j, k) = t0(i, j, k) + 0.1d0 *   &
              (t0(i - 1, j, k) + t0(i + 1, j, k)   &
               + t0(i, j - 1, k) + t0(i, j + 1, k)   &
               + t0(i, j, k - 1) + t0(i, j, k + 1)   &
               - 6.0d0 * t0(i, j, k))
          end do
        end do
      end do
      end

      subroutine hswap
      parameter (n = 10)
      double precision t0(1:n, 1:n, 1:n), t1(1:n, 1:n, 1:n)
      common /heat/ t0, t1
      integer i, j, k
      do k = 2, n - 1
        do j = 2, n - 1
          do i = 2, n - 1
            t0(i, j, k) = t1(i, j, k)
          end do
        end do
      end do
      end
|} )

let all = [ ("jacobi2d", [ jacobi2d ]); ("matmul", [ matmul ]); ("heat3d", [ heat3d ]) ]
