open Whirl
open Regions

type value = Vint of int | Vreal of float | Vstr of string

type event = {
  ev_write : bool;
  ev_addr : int;
  ev_bytes : int;
  ev_scope : string;
  ev_array : string;
  ev_coords : int list;
}

exception Runtime_error of string * Lang.Loc.t
exception Out_of_fuel
exception Return_signal

type dynamic_region = {
  dr_scope : string;
  dr_array : string;
  dr_mode : Mode.t;
  dr_section : Methods.Section.t;
  dr_count : int;
}

type oob = {
  oob_pu : string;
  oob_array : string;
  oob_coords : int list;
  oob_write : bool;
  oob_line : int;
}

type outcome = {
  out_text : string;
  out_steps : int;
  out_regions : dynamic_region list;
  out_calls : ((string * string) * int) list;
  out_oob : oob list;
}

let error loc fmt = Format.kasprintf (fun s -> raise (Runtime_error (s, loc))) fmt

(* ------------------------------------------------------------------ *)
(* Storage *)

type storage = {
  sg_base : int;
  sg_elem : Lang.Ast.dtype;
  sg_dims : int array;  (* row-major extents *)
  sg_data : value array;
  sg_scope : string;
  sg_name : string;
}

type binding =
  | Bscalar of value ref
  | Barray of storage

type state = {
  m : Ir.module_;
  globals : (int, binding) Hashtbl.t;
  observer : event -> unit;
  out : Buffer.t;
  mutable steps : int;
  fuel : int;
  sections : (string * string * Mode.t, Methods.Section.t * int) Hashtbl.t;
  calls : (string * string, int) Hashtbl.t;
  record_oob : bool;  (* record out-of-bounds accesses instead of trapping *)
  mutable oobs : oob list;  (* newest first *)
}

let zero_value = function
  | Lang.Ast.Int_t | Lang.Ast.Logical_t -> Vint 0
  | Lang.Ast.Real_t | Lang.Ast.Double_t -> Vreal 0.0
  | Lang.Ast.Char_t -> Vstr ""

let dims_of_ty pu = function
  | Symtab.Ty_array { dims; elem; contiguous = _ } ->
    let ext =
      List.map
        (fun (lo, hi) ->
          match lo, hi with
          | Some l, Some h when h >= l -> h - l + 1
          | _ -> -1)
        dims
    in
    let ext =
      match pu with
      | Some p when p.Ir.pu_lang = Lang.Ast.Fortran -> List.rev ext
      | _ -> ext
    in
    Some (elem, Array.of_list ext)
  | Symtab.Ty_scalar _ -> None

let alloc_binding ~scope ~name ~loc pu symtab_entry ty =
  match dims_of_ty pu ty with
  | None ->
    let d = match ty with Symtab.Ty_scalar d -> d | _ -> assert false in
    Bscalar (ref (zero_value d))
  | Some (elem, dims) ->
    if Array.exists (fun e -> e < 0) dims then
      error loc "cannot allocate variable-length array %s" name;
    let total = Array.fold_left ( * ) 1 dims in
    Barray
      {
        sg_base = symtab_entry.Symtab.st_mem_loc;
        sg_elem = elem;
        sg_dims = dims;
        sg_data = Array.make total (zero_value elem);
        sg_scope = scope;
        sg_name = name;
      }

(* ------------------------------------------------------------------ *)
(* Value helpers *)

let as_float loc = function
  | Vint n -> float_of_int n
  | Vreal f -> f
  | Vstr _ -> error loc "string used as a number"

let as_int loc = function
  | Vint n -> n
  | Vreal f -> int_of_float f
  | Vstr _ -> error loc "string used as an integer"

let truthy loc v = as_int loc v <> 0

let numeric_binop loc op a b =
  match a, b with
  | Vint x, Vint y -> (
    match op with
    | Wn.OPR_ADD -> Vint (x + y)
    | Wn.OPR_SUB -> Vint (x - y)
    | Wn.OPR_MPY -> Vint (x * y)
    | Wn.OPR_DIV ->
      if y = 0 then error loc "integer division by zero" else Vint (x / y)
    | Wn.OPR_MOD ->
      if y = 0 then error loc "mod by zero" else Vint (x mod y)
    | _ -> assert false)
  | _ ->
    let x = as_float loc a and y = as_float loc b in
    (match op with
    | Wn.OPR_ADD -> Vreal (x +. y)
    | Wn.OPR_SUB -> Vreal (x -. y)
    | Wn.OPR_MPY -> Vreal (x *. y)
    | Wn.OPR_DIV -> Vreal (x /. y)
    | Wn.OPR_MOD -> Vreal (Float.rem x y)
    | _ -> assert false)

let compare_values loc a b =
  match a, b with
  | Vint x, Vint y -> compare x y
  | Vstr x, Vstr y -> compare x y
  | _ -> compare (as_float loc a) (as_float loc b)

let string_of_value = function
  | Vint n -> string_of_int n
  | Vreal f -> Printf.sprintf "%g" f
  | Vstr s -> s

(* ------------------------------------------------------------------ *)

let record_section state scope name mode coords =
  let key = (scope, name, mode) in
  let section, count =
    match Hashtbl.find_opt state.sections key with
    | Some (s, c) -> (s, c)
    | None -> (Methods.Section.empty (List.length coords), 0)
  in
  Hashtbl.replace state.sections key
    (Methods.Section.add coords section, count + 1)

(* ------------------------------------------------------------------ *)
(* Frames *)

type frame = {
  fr_pu : Ir.pu;
  fr_slots : (int, binding) Hashtbl.t;
}

let binding_of state frame st =
  if Ir.is_global_idx st then
    match Hashtbl.find_opt state.globals st with
    | Some b -> b
    | None -> error Lang.Loc.dummy "unallocated global symbol %d" st
  else
    match Hashtbl.find_opt frame.fr_slots st with
    | Some b -> b
    | None ->
      (* lazily allocate locals *)
      let entry = Symtab.st frame.fr_pu.Ir.pu_symtab st in
      let ty = Symtab.ty frame.fr_pu.Ir.pu_symtab entry.Symtab.st_ty in
      let b =
        alloc_binding ~scope:frame.fr_pu.Ir.pu_name ~name:entry.Symtab.st_name
          ~loc:entry.Symtab.st_loc (Some frame.fr_pu) entry ty
      in
      Hashtbl.replace frame.fr_slots st b;
      b

let scalar_ref state frame loc st =
  match binding_of state frame st with
  | Bscalar r -> r
  | Barray _ -> error loc "array used as a scalar"

let array_storage state frame loc st =
  match binding_of state frame st with
  | Barray s -> s
  | Bscalar _ -> error loc "scalar used as an array"

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let rec eval state frame (w : Wn.t) : value =
  match w.Wn.operator with
  | Wn.OPR_INTCONST -> Vint w.Wn.const_val
  | Wn.OPR_CONST -> Vreal w.Wn.flt_val
  | Wn.OPR_STRCONST -> Vstr w.Wn.str_val
  | Wn.OPR_LDID -> !(scalar_ref state frame w.Wn.linenum w.Wn.st_idx)
  | Wn.OPR_ILOAD ->
    let addr = Wn.kid w 0 in
    (* single-image execution: a remote access with image 1 is local *)
    let addr =
      if addr.Wn.operator = Wn.OPR_COIDX then begin
        let img = as_int w.Wn.linenum (eval state frame (Wn.kid addr 1)) in
        if img <> 1 then
          error w.Wn.linenum
            "remote access to image %d in a single-image run" img;
        Wn.kid addr 0
      end
      else addr
    in
    if addr.Wn.operator <> Wn.OPR_ARRAY then
      error w.Wn.linenum "ILOAD of a non-ARRAY address";
    (match locate state frame ~write:false addr with
    | storage, Some flat, coords ->
      emit_event state storage ~write:false flat coords;
      record_section state
        (if storage.sg_scope = "@" then "@" else storage.sg_scope)
        storage.sg_name Mode.USE coords;
      storage.sg_data.(flat)
    | storage, None, _ ->
      (* recorded out-of-bounds read: a well-defined dummy value keeps the
         run going so one fault does not mask later ones *)
      zero_value storage.sg_elem)
  | Wn.OPR_ADD | Wn.OPR_SUB | Wn.OPR_MPY | Wn.OPR_DIV | Wn.OPR_MOD ->
    numeric_binop w.Wn.linenum w.Wn.operator
      (eval state frame (Wn.kid w 0))
      (eval state frame (Wn.kid w 1))
  | Wn.OPR_NEG -> (
    match eval state frame (Wn.kid w 0) with
    | Vint n -> Vint (-n)
    | Vreal f -> Vreal (-.f)
    | Vstr _ -> error w.Wn.linenum "negation of a string")
  | Wn.OPR_EQ | Wn.OPR_NE | Wn.OPR_LT | Wn.OPR_LE | Wn.OPR_GT | Wn.OPR_GE ->
    let c =
      compare_values w.Wn.linenum
        (eval state frame (Wn.kid w 0))
        (eval state frame (Wn.kid w 1))
    in
    let b =
      match w.Wn.operator with
      | Wn.OPR_EQ -> c = 0
      | Wn.OPR_NE -> c <> 0
      | Wn.OPR_LT -> c < 0
      | Wn.OPR_LE -> c <= 0
      | Wn.OPR_GT -> c > 0
      | Wn.OPR_GE -> c >= 0
      | _ -> assert false
    in
    Vint (if b then 1 else 0)
  | Wn.OPR_LAND ->
    Vint
      (if
         truthy w.Wn.linenum (eval state frame (Wn.kid w 0))
         && truthy w.Wn.linenum (eval state frame (Wn.kid w 1))
       then 1
       else 0)
  | Wn.OPR_LIOR ->
    Vint
      (if
         truthy w.Wn.linenum (eval state frame (Wn.kid w 0))
         || truthy w.Wn.linenum (eval state frame (Wn.kid w 1))
       then 1
       else 0)
  | Wn.OPR_LNOT ->
    Vint (if truthy w.Wn.linenum (eval state frame (Wn.kid w 0)) then 0 else 1)
  | Wn.OPR_INTRINSIC_OP -> eval_intrinsic state frame w
  | Wn.OPR_CALL ->
    (* function call in expression position: the callee stores its result
       into the local scalar named after itself (the Fortran convention the
       lowering sets up); read it back from the callee's frame *)
    let callee, callee_frame = exec_call state frame w in
    (match Symtab.find_st callee.Ir.pu_symtab callee.Ir.pu_name with
    | Some result_st -> (
      match Hashtbl.find_opt callee_frame.fr_slots result_st with
      | Some (Bscalar r) -> !r
      | _ ->
        error w.Wn.linenum "function %s did not produce a result"
          callee.Ir.pu_name)
    | None ->
      error w.Wn.linenum "%s is a subroutine, not a function (no value)"
        callee.Ir.pu_name)
  | op -> error w.Wn.linenum "cannot evaluate operator %s" (Wn.operator_name op)

and eval_intrinsic state frame (w : Wn.t) : value =
  let loc = w.Wn.linenum in
  let arg i = eval state frame (Wn.kid w i) in
  let f1 fn =
    Vreal (fn (as_float loc (arg 0)))
  in
  match String.lowercase_ascii w.Wn.str_val, Wn.kid_count w with
  | "mod", 2 -> numeric_binop loc Wn.OPR_MOD (arg 0) (arg 1)
  | ("abs" | "dabs" | "fabs"), 1 -> (
    match arg 0 with
    | Vint n -> Vint (abs n)
    | Vreal f -> Vreal (Float.abs f)
    | Vstr _ -> error loc "abs of a string")
  | ("sqrt" | "dsqrt"), 1 -> f1 sqrt
  | ("exp" | "dexp"), 1 -> f1 exp
  | ("log" | "dlog"), 1 -> f1 log
  | "sin", 1 -> f1 sin
  | "cos", 1 -> f1 cos
  | "tan", 1 -> f1 tan
  | "pow", 2 -> (
    match arg 0, arg 1 with
    | Vint b, Vint e when e >= 0 ->
      let rec go acc i = if i = 0 then acc else go (acc * b) (i - 1) in
      Vint (go 1 e)
    | a, b -> Vreal (Float.pow (as_float loc a) (as_float loc b)))
  | ("min" | "max"), n when n >= 2 ->
    let vs = List.init n arg in
    let pick cmp =
      List.fold_left
        (fun acc v -> if cmp (compare_values loc v acc) 0 then v else acc)
        (List.hd vs) (List.tl vs)
    in
    if String.lowercase_ascii w.Wn.str_val = "min" then pick ( < ) else pick ( > )
  | ("dble" | "float" | "real"), 1 -> Vreal (as_float loc (arg 0))
  | ("int" | "floor"), 1 -> Vint (int_of_float (Float.trunc (as_float loc (arg 0))))
  | "nint", 1 -> Vint (int_of_float (Float.round (as_float loc (arg 0))))
  | "this_image", 0 -> Vint 1
  | "num_images", 0 -> Vint 1
  | "ceil", 1 -> Vint (int_of_float (Float.ceil (as_float loc (arg 0))))
  | name, n -> error loc "unsupported intrinsic %s/%d" name n

(* resolve an ARRAY node to (storage, flat index, coords); [None] flat when
   the access is out of bounds and the run records instead of trapping *)
and locate state frame ~write (w : Wn.t) =
  let base = Wn.array_base w in
  let storage = array_storage state frame w.Wn.linenum base.Wn.st_idx in
  let n = Wn.num_dim w in
  if n <> Array.length storage.sg_dims then
    error w.Wn.linenum "rank mismatch on %s" storage.sg_name;
  let coords =
    List.init n (fun k -> as_int w.Wn.linenum (eval state frame (Wn.array_index w k)))
  in
  let oob = List.exists2 (fun y h -> y < 0 || y >= h) coords
      (Array.to_list storage.sg_dims)
  in
  if oob then begin
    if not state.record_oob then
      List.iteri
        (fun k y ->
          let h = storage.sg_dims.(k) in
          if y < 0 || y >= h then
            error w.Wn.linenum
              "index %d out of bounds [0,%d) in dimension %d of %s" y h k
              storage.sg_name)
        coords;
    state.oobs <-
      {
        oob_pu = frame.fr_pu.Ir.pu_name;
        (* the symbol name as the executing PU spells it (the formal for a
           by-reference argument), so the event joins against that PU's
           static access table rather than the caller's actual *)
        oob_array = Ir.st_name state.m frame.fr_pu base.Wn.st_idx;
        oob_coords = coords;
        oob_write = write;
        oob_line = Lang.Loc.line w.Wn.linenum;
      }
      :: state.oobs;
    (storage, None, coords)
  end
  else begin
    let flat = ref 0 in
    List.iteri
      (fun k y -> flat := (!flat * storage.sg_dims.(k)) + y)
      coords;
    (storage, Some !flat, coords)
  end

and emit_event state storage ~write flat coords =
  let bytes = Lang.Ast.dtype_size storage.sg_elem in
  state.observer
    {
      ev_write = write;
      ev_addr = storage.sg_base + (bytes * flat);
      ev_bytes = bytes;
      ev_scope = storage.sg_scope;
      ev_array = storage.sg_name;
      ev_coords = coords;
    }

(* printf-style substitution for the C front end's printf *)
and format_io loc fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let args = ref args in
  let next () =
    match !args with
    | [] -> error loc "printf: not enough arguments"
    | v :: rest ->
      args := rest;
      v
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | 'd' | 'i' -> Buffer.add_string buf (string_of_int (as_int loc (next ())))
      | 'g' | 'f' | 'e' ->
        Buffer.add_string buf (Printf.sprintf "%g" (as_float loc (next ())))
      | 's' -> Buffer.add_string buf (string_of_value (next ()))
      | '%' -> Buffer.add_char buf '%'
      | c -> Buffer.add_char buf c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Statements *)

and tick state loc =
  state.steps <- state.steps + 1;
  if state.steps > state.fuel then begin
    ignore loc;
    raise Out_of_fuel
  end

and exec state frame (w : Wn.t) : unit =
  match w.Wn.operator with
  | Wn.OPR_BLOCK | Wn.OPR_FUNC_ENTRY -> Array.iter (exec state frame) w.Wn.kids
  | Wn.OPR_STID ->
    tick state w.Wn.linenum;
    let v = eval state frame (Wn.kid w 0) in
    scalar_ref state frame w.Wn.linenum w.Wn.st_idx := v
  | Wn.OPR_ISTORE ->
    tick state w.Wn.linenum;
    let v = eval state frame (Wn.kid w 0) in
    let addr = Wn.kid w 1 in
    let addr =
      if addr.Wn.operator = Wn.OPR_COIDX then begin
        let img = as_int w.Wn.linenum (eval state frame (Wn.kid addr 1)) in
        if img <> 1 then
          error w.Wn.linenum
            "remote access to image %d in a single-image run" img;
        Wn.kid addr 0
      end
      else addr
    in
    if addr.Wn.operator <> Wn.OPR_ARRAY then
      error w.Wn.linenum "ISTORE to a non-ARRAY address";
    (match locate state frame ~write:true addr with
    | storage, Some flat, coords ->
      emit_event state storage ~write:true flat coords;
      record_section state
        (if storage.sg_scope = "@" then "@" else storage.sg_scope)
        storage.sg_name Mode.DEF coords;
      storage.sg_data.(flat) <- v
    | _, None, _ -> (* recorded out-of-bounds write: dropped *) ())
  | Wn.OPR_DO_LOOP ->
    tick state w.Wn.linenum;
    let ivar = (Wn.kid w 0).Wn.st_idx in
    let r = scalar_ref state frame w.Wn.linenum ivar in
    let lo = as_int w.Wn.linenum (eval state frame (Wn.kid w 1)) in
    let hi = as_int w.Wn.linenum (eval state frame (Wn.kid w 2)) in
    let step = as_int w.Wn.linenum (eval state frame (Wn.kid w 3)) in
    if step = 0 then error w.Wn.linenum "zero loop step";
    r := Vint lo;
    let continue () =
      let v = as_int w.Wn.linenum !r in
      if step > 0 then v <= hi else v >= hi
    in
    while continue () do
      tick state w.Wn.linenum;
      exec state frame (Wn.kid w 4);
      r := Vint (as_int w.Wn.linenum !r + step)
    done
  | Wn.OPR_WHILE_DO ->
    tick state w.Wn.linenum;
    while truthy w.Wn.linenum (eval state frame (Wn.kid w 0)) do
      tick state w.Wn.linenum;
      exec state frame (Wn.kid w 1)
    done
  | Wn.OPR_IF ->
    tick state w.Wn.linenum;
    if truthy w.Wn.linenum (eval state frame (Wn.kid w 0)) then
      exec state frame (Wn.kid w 1)
    else exec state frame (Wn.kid w 2)
  | Wn.OPR_CALL ->
    tick state w.Wn.linenum;
    ignore (exec_call state frame w)
  | Wn.OPR_RETURN -> raise Return_signal
  | Wn.OPR_IO ->
    tick state w.Wn.linenum;
    let values =
      Array.to_list w.Wn.kids
      |> List.map (fun parm ->
             let a =
               if parm.Wn.operator = Wn.OPR_PARM then Wn.kid parm 0 else parm
             in
             eval state frame a)
    in
    (match values with
    | Vstr fmt :: rest when String.contains fmt '%' ->
      (* C printf-style: substitute %d/%g/%f/%s left to right *)
      Buffer.add_string state.out (format_io w.Wn.linenum fmt rest)
    | _ ->
      Buffer.add_string state.out
        (String.concat " " (List.map string_of_value values));
      Buffer.add_char state.out '\n')
  | Wn.OPR_INTRINSIC_OP ->
    tick state w.Wn.linenum;
    ignore (eval_intrinsic state frame w)
  | Wn.OPR_NOP -> ()
  | op -> error w.Wn.linenum "cannot execute operator %s" (Wn.operator_name op)

and exec_call state frame (w : Wn.t) =
  let callee_name = Ir.st_name state.m frame.fr_pu w.Wn.st_idx in
  match Ir.find_pu state.m callee_name with
  | None -> error w.Wn.linenum "call to unknown procedure %s" callee_name
  | Some callee ->
    let formals = callee.Ir.pu_formals in
    let args = Array.to_list w.Wn.kids in
    if List.length formals <> List.length args then
      error w.Wn.linenum "%s expects %d arguments, got %d" callee_name
        (List.length formals) (List.length args);
    let edge = (frame.fr_pu.Ir.pu_name, callee_name) in
    Hashtbl.replace state.calls edge
      (1 + try Hashtbl.find state.calls edge with Not_found -> 0);
    let callee_frame = { fr_pu = callee; fr_slots = Hashtbl.create 16 } in
    List.iter2
      (fun formal parm ->
        let a = Wn.kid parm 0 in
        let binding =
          match a.Wn.operator with
          | Wn.OPR_LDA -> binding_of state frame a.Wn.st_idx
          | Wn.OPR_ARRAY ->
            error w.Wn.linenum
              "element-address argument passing is not supported by the \
               interpreter"
          | _ -> Bscalar (ref (eval state frame a))
        in
        Hashtbl.replace callee_frame.fr_slots formal binding)
      formals args;
    (try exec state callee_frame callee.Ir.pu_body
     with Return_signal -> ());
    (callee, callee_frame)

(* ------------------------------------------------------------------ *)

let allocate_globals state =
  Symtab.iter_st state.m.Ir.m_global (fun idx entry ->
      match entry.Symtab.st_sclass with
      | Symtab.Sclass_text -> ()
      | _ ->
        let ty = Symtab.ty state.m.Ir.m_global entry.Symtab.st_ty in
        (* globals come from Fortran COMMON or C file scope; dimension
           order was already stored in source order, so pick the owning
           language from any PU of that language.  COMMON declarations in
           our corpus are Fortran; C globals are C.  Use the language of
           the first PU. *)
        let pu = match state.m.Ir.m_pus with p :: _ -> Some p | [] -> None in
        let b =
          alloc_binding ~scope:"@" ~name:entry.Symtab.st_name
            ~loc:entry.Symtab.st_loc pu entry ty
        in
        Hashtbl.replace state.globals (Ir.encode_global idx) b)

let find_entry m entry =
  match entry with
  | Some name -> (
    match Ir.find_pu m name with
    | Some pu -> pu
    | None -> error Lang.Loc.dummy "no procedure named %s" name)
  | None -> (
    let is_program pu =
      match
        Lang.Sema.String_map.find_opt pu.Ir.pu_name
          m.Ir.m_program.Lang.Sema.prog_procs
      with
      | Some pi -> pi.Lang.Sema.pi_proc.Lang.Ast.proc_kind = Lang.Ast.Program
      | None -> false
    in
    match List.find_opt is_program m.Ir.m_pus with
    | Some pu -> pu
    | None -> (
      match m.Ir.m_pus with
      | pu :: _ -> pu
      | [] -> error Lang.Loc.dummy "empty module"))

let run ?(fuel = 50_000_000) ?(observer = fun _ -> ()) ?(record_oob = false)
    ?entry m =
  Layout.assign m;
  let state =
    {
      m;
      globals = Hashtbl.create 64;
      observer;
      out = Buffer.create 256;
      steps = 0;
      fuel;
      sections = Hashtbl.create 64;
      calls = Hashtbl.create 32;
      record_oob;
      oobs = [];
    }
  in
  allocate_globals state;
  let entry_pu = find_entry m entry in
  let frame = { fr_pu = entry_pu; fr_slots = Hashtbl.create 16 } in
  (try exec state frame entry_pu.Ir.pu_body with Return_signal -> ());
  let out_regions =
    Hashtbl.fold
      (fun (scope, array, mode) (section, count) acc ->
        {
          dr_scope = scope;
          dr_array = array;
          dr_mode = mode;
          dr_section = section;
          dr_count = count;
        }
        :: acc)
      state.sections []
  in
  {
    out_text = Buffer.contents state.out;
    out_steps = state.steps;
    out_regions;
    out_calls =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) state.calls []
      |> List.sort compare;
    out_oob = List.rev state.oobs;
  }
