(** A direct interpreter of high-level WHIRL.

    Two roles in the reproduction:

    - it drives the {!Cache} simulator through the [observer] hook (every
      array element access reports the virtual address computed with the
      WHIRL address formula [base + z * sum_i (y_i * prod_{j>i} h_j)] over
      the {!Whirl.Layout} addresses), which is how the Case 1 fusion claim
      is measured;
    - it implements the paper's future-work item "dynamic array region
      information": each run records, per (scope, array, mode), the regular
      section actually touched, which the tests compare against the static
      regions (static must cover dynamic). *)

type value = Vint of int | Vreal of float | Vstr of string

type event = {
  ev_write : bool;
  ev_addr : int;   (** byte address from the layout pass *)
  ev_bytes : int;  (** element size *)
  ev_scope : string;  (** "@" for globals, else the procedure name *)
  ev_array : string;
  ev_coords : int list;  (** zero-based row-major element coordinates *)
}

exception Runtime_error of string * Lang.Loc.t
exception Out_of_fuel

type dynamic_region = {
  dr_scope : string;
  dr_array : string;
  dr_mode : Regions.Mode.t;  (** USE or DEF *)
  dr_section : Regions.Methods.Section.t;
  dr_count : int;  (** dynamic access count *)
}

type outcome = {
  out_text : string;   (** everything PRINT produced *)
  out_steps : int;
  out_regions : dynamic_region list;
  out_calls : ((string * string) * int) list;
      (** dynamic call-graph feedback: (caller, callee) -> invocation count
          (Dragon's "static/dynamic call graphs with feedback information",
          Fig 5) *)
}

val run :
  ?fuel:int ->
  ?observer:(event -> unit) ->
  ?entry:string ->
  Whirl.Ir.module_ ->
  outcome
(** Runs the main program (or [entry]).  [fuel] bounds the number of
    statements executed (default 50 million).
    @raise Runtime_error on out-of-bounds accesses, bad argument counts,
    unallocatable (variable-length) local arrays, and type confusion.
    @raise Out_of_fuel when the budget is exhausted. *)
