(** A direct interpreter of high-level WHIRL.

    Two roles in the reproduction:

    - it drives the {!Cache} simulator through the [observer] hook (every
      array element access reports the virtual address computed with the
      WHIRL address formula [base + z * sum_i (y_i * prod_{j>i} h_j)] over
      the {!Whirl.Layout} addresses), which is how the Case 1 fusion claim
      is measured;
    - it implements the paper's future-work item "dynamic array region
      information": each run records, per (scope, array, mode), the regular
      section actually touched, which the tests compare against the static
      regions (static must cover dynamic). *)

type value = Vint of int | Vreal of float | Vstr of string

type event = {
  ev_write : bool;
  ev_addr : int;   (** byte address from the layout pass *)
  ev_bytes : int;  (** element size *)
  ev_scope : string;  (** "@" for globals, else the procedure name *)
  ev_array : string;
  ev_coords : int list;  (** zero-based row-major element coordinates *)
}

exception Runtime_error of string * Lang.Loc.t
exception Out_of_fuel

type dynamic_region = {
  dr_scope : string;
  dr_array : string;
  dr_mode : Regions.Mode.t;  (** USE or DEF *)
  dr_section : Regions.Methods.Section.t;
  dr_count : int;  (** dynamic access count *)
}

type oob = {
  oob_pu : string;       (** the procedure that executed the access *)
  oob_array : string;
      (** the symbol name as [oob_pu] spells it — a by-reference argument
          reports the formal's name, not the caller's actual, so events
          join against the executing PU's static access table *)
  oob_coords : int list; (** zero-based row-major, some coordinate invalid *)
  oob_write : bool;
  oob_line : int;        (** source line of the reference *)
}
(** One observed out-of-bounds access ([~record_oob:true] runs only). *)

type outcome = {
  out_text : string;   (** everything PRINT produced *)
  out_steps : int;
  out_regions : dynamic_region list;
  out_calls : ((string * string) * int) list;
      (** dynamic call-graph feedback: (caller, callee) -> invocation count
          (Dragon's "static/dynamic call graphs with feedback information",
          Fig 5) *)
  out_oob : oob list;
      (** observed out-of-bounds accesses in execution order; always empty
          without [~record_oob:true] (the run traps instead) *)
}

val run :
  ?fuel:int ->
  ?observer:(event -> unit) ->
  ?record_oob:bool ->
  ?entry:string ->
  Whirl.Ir.module_ ->
  outcome
(** Runs the main program (or [entry]).  [fuel] bounds the number of
    statements executed (default 50 million).

    With [~record_oob:true] an out-of-bounds array access does not raise:
    the event is appended to [out_oob], a read yields the element type's
    zero and a write is dropped, and execution continues — the mode the
    differential harness uses to collect {e every} fault of a run, not just
    the first.  Such accesses are excluded from [out_regions] and from the
    observer stream.
    @raise Runtime_error on out-of-bounds accesses (unless recording), bad
    argument counts, unallocatable (variable-length) local arrays, and type
    confusion.
    @raise Out_of_fuel when the budget is exhausted. *)
