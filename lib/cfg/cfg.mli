(** Per-procedure control-flow graphs.

    Dragon's first version exported control-flow analysis results through
    the CFG-IPL module (paper, Section IV-A); this is the equivalent: built
    from structured high-level WHIRL, exported as [.cfg] files, rendered in
    DOT and ASCII by the Dragon views. *)

type block = {
  id : int;
  stmts : Whirl.Wn.t list;  (** straight-line statements, no control flow *)
  label : string;           (** "entry", "exit", "then", "loop-head", ... *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  proc : string;
  blocks : block array;
  entry : int;
  exit_ : int;
}

val build : Whirl.Ir.pu -> t
(** Structured construction: every DO_LOOP gets a head block with a back
    edge, every IF a join block; RETURN statements edge to exit. *)

val block_count : t -> int
val edge_count : t -> int

val reverse_postorder : t -> int list
(** From entry; unreachable blocks excluded. *)

val dominators : t -> int array
(** [idom.(b)] is the immediate dominator of [b] (entry maps to itself);
    unreachable blocks map to [-1].  Cooper-Harvey-Kennedy iteration. *)

val dominates : t -> int -> int -> bool

val to_dot : t -> string
val to_ascii : t -> string
val pp : Format.formatter -> t -> unit
