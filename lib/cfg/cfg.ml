open Whirl

type block = {
  id : int;
  stmts : Wn.t list;
  label : string;
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  proc : string;
  blocks : block array;
  entry : int;
  exit_ : int;
}

(* mutable builder *)
type builder = {
  mutable blocks_rev : block list;
  mutable count : int;
  mutable cur : int;          (* block currently being appended to *)
  mutable cur_stmts : Wn.t list;  (* reversed *)
  bexit : int;
}

let mk_block b label =
  let blk = { id = b.count; stmts = []; label; succs = []; preds = [] } in
  b.blocks_rev <- blk :: b.blocks_rev;
  b.count <- b.count + 1;
  blk.id

let find_block b id = List.find (fun blk -> blk.id = id) b.blocks_rev

let add_edge b src dst =
  let s = find_block b src and d = find_block b dst in
  if not (List.mem dst s.succs) then s.succs <- s.succs @ [ dst ];
  if not (List.mem src d.preds) then d.preds <- d.preds @ [ src ]

(* seal the statements collected so far into the current block *)
let seal b =
  let blk = find_block b b.cur in
  let blk' = { blk with stmts = List.rev b.cur_stmts } in
  b.blocks_rev <- List.map (fun x -> if x.id = blk.id then blk' else x) b.blocks_rev;
  b.cur_stmts <- []

let switch_to b id =
  seal b;
  b.cur <- id

let append b wn = b.cur_stmts <- wn :: b.cur_stmts

let rec process_block b (wn : Wn.t) =
  Array.iter (process_stmt b) wn.Wn.kids

and process_stmt b (wn : Wn.t) =
  match wn.Wn.operator with
  | Wn.OPR_BLOCK -> process_block b wn
  | Wn.OPR_STID | Wn.OPR_ISTORE | Wn.OPR_CALL | Wn.OPR_IO
  | Wn.OPR_INTRINSIC_OP | Wn.OPR_NOP ->
    append b wn
  | Wn.OPR_RETURN ->
    append b wn;
    add_edge b b.cur b.bexit;
    (* anything after a return begins an unreachable block *)
    let dead = mk_block b "unreachable" in
    switch_to b dead
  | Wn.OPR_IF ->
    append b (Wn.kid wn 0);
    let cond = b.cur in
    let join = mk_block b "join" in
    let then_head = mk_block b "then" in
    add_edge b cond then_head;
    switch_to b then_head;
    process_stmt b (Wn.kid wn 1);
    add_edge b b.cur join;
    seal b;
    let else_wn = Wn.kid wn 2 in
    if Wn.kid_count else_wn > 0 then begin
      let else_head = mk_block b "else" in
      add_edge b cond else_head;
      b.cur <- else_head;
      process_stmt b else_wn;
      add_edge b b.cur join;
      seal b
    end
    else add_edge b cond join;
    b.cur <- join
  | Wn.OPR_DO_LOOP ->
    let head = mk_block b "loop-head" in
    add_edge b b.cur head;
    switch_to b head;
    append b wn (* the loop header: ivar, bounds, step *);
    seal b;
    let body_head = mk_block b "loop-body" in
    let after = mk_block b "loop-exit" in
    add_edge b head body_head;
    add_edge b head after;
    b.cur <- body_head;
    process_stmt b (Wn.kid wn 4);
    add_edge b b.cur head;
    seal b;
    b.cur <- after
  | Wn.OPR_WHILE_DO ->
    let head = mk_block b "while-head" in
    add_edge b b.cur head;
    switch_to b head;
    append b (Wn.kid wn 0);
    seal b;
    let body_head = mk_block b "while-body" in
    let after = mk_block b "while-exit" in
    add_edge b head body_head;
    add_edge b head after;
    b.cur <- body_head;
    process_stmt b (Wn.kid wn 1);
    add_edge b b.cur head;
    seal b;
    b.cur <- after
  | _ -> append b wn

let build (pu : Ir.pu) =
  let b =
    {
      blocks_rev = [];
      count = 0;
      cur = 0;
      cur_stmts = [];
      bexit = 1;
    }
  in
  let entry = mk_block b "entry" in
  let bexit = mk_block b "exit" in
  assert (entry = 0 && bexit = 1);
  let first = mk_block b "b" in
  b.cur <- first;
  add_edge b entry first;
  process_stmt b (Wn.kid pu.Ir.pu_body 0);
  add_edge b b.cur bexit;
  seal b;
  let blocks =
    Array.of_list (List.sort (fun a c -> Int.compare a.id c.id) b.blocks_rev)
  in
  { proc = pu.Ir.pu_name; blocks; entry; exit_ = bexit }

let block_count t = Array.length t.blocks

let edge_count t =
  Array.fold_left (fun acc blk -> acc + List.length blk.succs) 0 t.blocks

let reverse_postorder t =
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter dfs t.blocks.(i).succs;
      order := i :: !order
    end
  in
  dfs t.entry;
  !order

(* Cooper-Harvey-Kennedy iterative dominators *)
let dominators t =
  let n = Array.length t.blocks in
  let rpo = reverse_postorder t in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(t.entry) <- t.entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> t.entry then begin
          let preds =
            List.filter (fun p -> idom.(p) <> -1) t.blocks.(b).preds
          in
          match preds with
          | [] -> ()
          | p :: rest ->
            let new_idom = List.fold_left intersect p rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  idom

let dominates t a b =
  let idom = dominators t in
  let rec walk x = if x = a then true else if x = t.entry || x = -1 then a = t.entry else walk idom.(x) in
  if idom.(b) = -1 then false else walk b

let block_title blk =
  Printf.sprintf "B%d (%s, %d stmts)" blk.id blk.label (List.length blk.stmts)

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" t.proc);
  Buffer.add_string buf "  node [shape=box fontname=\"monospace\"];\n";
  Array.iter
    (fun blk ->
      if blk.preds <> [] || blk.succs <> [] || blk.id = t.entry then
        Buffer.add_string buf
          (Printf.sprintf "  b%d [label=\"%s\"];\n" blk.id (block_title blk)))
    t.blocks;
  Array.iter
    (fun blk ->
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  b%d -> b%d;\n" blk.id s))
        blk.succs)
    t.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_ascii t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "CFG of %s (%d blocks, %d edges)\n" t.proc (block_count t) (edge_count t));
  Array.iter
    (fun blk ->
      if blk.preds <> [] || blk.succs <> [] || blk.id = t.entry then
        Buffer.add_string buf
          (Printf.sprintf "  %-28s -> [%s]\n" (block_title blk)
             (String.concat ", " (List.map (Printf.sprintf "B%d") blk.succs))))
    t.blocks;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_ascii t)
