(** Analytic host-device offload cost model.

    The paper's Case 2 measures, on a 24-core cluster with a PGI-accelerator
    GPU, the speedup of [!$acc region copyin(u(1:3,1:5,1:10,1:4))] over
    [copyin(u)] (Table IV).  We have no GPU, so the quantity the experiment
    actually varies — bytes moved across the PCIe link — is modeled
    directly: [time = latency + bytes / bandwidth] per direction, plus a
    kernel term that is identical in both variants.  The *ratio* the paper
    reports depends only on the byte counts our region analysis derives,
    which is the behaviour this substitution preserves (see DESIGN.md). *)

type link = {
  latency_s : float;      (** per-transfer setup cost *)
  bandwidth_bps : float;  (** sustained bytes/second *)
}

val pcie_gen2 : link
(** 2012-era settings: 10 us latency, 6 GB/s sustained. *)

val transfer_time : link -> bytes:int -> float
(** Zero bytes still pays nothing (no transfer issued). *)

type offload = {
  off_bytes_in : int;
  off_bytes_out : int;
  off_kernel_s : float;
}

val offload_time : link -> offload -> float

val region_bytes : elem_size:int -> Regions.Region.t -> int option
(** Bytes a [copyin] of exactly this region moves ([point_count] times the
    element size); [None] when the region is not constant-bounded.
    Strided regions transfer their bounding box (contiguous DMA), matching
    what [copyin(a(lb:ub))] does. *)

val region_box_bytes : elem_size:int -> Regions.Region.t -> int option
(** Bounding-box bytes (strides ignored): what subarray [copyin] moves. *)

val whole_array_bytes : elem_size:int -> extents:int option list -> int option

val speedup : baseline:float -> improved:float -> float

type comparison = {
  cmp_label : string;
  cmp_full_bytes : int;
  cmp_sub_bytes : int;
  cmp_full_time : float;
  cmp_sub_time : float;
  cmp_speedup : float;
}

val compare_copyin :
  ?link:link ->
  ?kernel_s:float ->
  label:string ->
  elem_size:int ->
  extents:int option list ->
  Regions.Region.t ->
  comparison option
(** Full-array copyin versus region-bounding-box copyin for one kernel
    launch. [None] if sizes are not constant. *)

val pp_comparison : Format.formatter -> comparison -> unit
