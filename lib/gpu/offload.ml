open Regions

type link = {
  latency_s : float;
  bandwidth_bps : float;
}

let pcie_gen2 = { latency_s = 10e-6; bandwidth_bps = 6e9 }

let transfer_time link ~bytes =
  if bytes <= 0 then 0.0
  else link.latency_s +. (float_of_int bytes /. link.bandwidth_bps)

type offload = {
  off_bytes_in : int;
  off_bytes_out : int;
  off_kernel_s : float;
}

let offload_time link o =
  transfer_time link ~bytes:o.off_bytes_in
  +. o.off_kernel_s
  +. transfer_time link ~bytes:o.off_bytes_out

let region_bytes ~elem_size region =
  Option.map (fun n -> n * elem_size) (Region.point_count region)

let dim_box d =
  match d.Region.lb, d.Region.ub with
  | Region.Bconst l, Region.Bconst u when u >= l -> Some (u - l + 1)
  | _ -> None

let region_box_bytes ~elem_size region =
  List.fold_left
    (fun acc d ->
      match acc, dim_box d with
      | Some a, Some b -> Some (a * b)
      | _ -> None)
    (Some 1) (Region.dim_list region)
  |> Option.map (fun n -> n * elem_size)

let whole_array_bytes ~elem_size ~extents =
  List.fold_left
    (fun acc e ->
      match acc, e with Some a, Some b -> Some (a * b) | _ -> None)
    (Some 1) extents
  |> Option.map (fun n -> n * elem_size)

let speedup ~baseline ~improved =
  if improved <= 0.0 then infinity else baseline /. improved

type comparison = {
  cmp_label : string;
  cmp_full_bytes : int;
  cmp_sub_bytes : int;
  cmp_full_time : float;
  cmp_sub_time : float;
  cmp_speedup : float;
}

let compare_copyin ?(link = pcie_gen2) ?(kernel_s = 0.0) ~label ~elem_size
    ~extents region =
  match
    ( whole_array_bytes ~elem_size ~extents,
      region_box_bytes ~elem_size region )
  with
  | Some full, Some sub ->
    let full_time =
      offload_time link
        { off_bytes_in = full; off_bytes_out = 0; off_kernel_s = kernel_s }
    in
    let sub_time =
      offload_time link
        { off_bytes_in = sub; off_bytes_out = 0; off_kernel_s = kernel_s }
    in
    Some
      {
        cmp_label = label;
        cmp_full_bytes = full;
        cmp_sub_bytes = sub;
        cmp_full_time = full_time;
        cmp_sub_time = sub_time;
        cmp_speedup = speedup ~baseline:full_time ~improved:sub_time;
      }
  | _ -> None

let pp_comparison ppf c =
  Format.fprintf ppf
    "%-8s copyin(whole)=%d B (%.3g s)  copyin(region)=%d B (%.3g s)  speedup %.1fx"
    c.cmp_label c.cmp_full_bytes c.cmp_full_time c.cmp_sub_bytes c.cmp_sub_time
    c.cmp_speedup
