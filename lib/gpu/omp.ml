type t = {
  fork_join_s : float;
  per_thread_s : float;
}

let default_2012 = { fork_join_s = 5e-6; per_thread_s = 0.4e-6 }

let region_overhead t ~threads =
  t.fork_join_s +. (t.per_thread_s *. float_of_int threads)

let total_overhead t ~threads ~regions =
  float_of_int regions *. region_overhead t ~threads

let fusion_saving t ~threads ~regions_before ~regions_after =
  total_overhead t ~threads ~regions:regions_before
  -. total_overhead t ~threads ~regions:regions_after
