(** OpenMP fork-join overhead model for Case 1.

    The paper's first case study claims: "We were also able to avoid omp
    parallel region startup overheads by having one parallel do construct
    instead of two."  The effect is linear in the number of parallel-region
    launches, with per-launch cost growing with the team size (EPCC-style
    numbers). *)

type t = {
  fork_join_s : float;     (** base fork+join cost *)
  per_thread_s : float;    (** additional cost per team member *)
}

val default_2012 : t
(** 24-core node of the paper's era: 5 us base + 0.4 us per thread. *)

val region_overhead : t -> threads:int -> float

val total_overhead : t -> threads:int -> regions:int -> float

val fusion_saving : t -> threads:int -> regions_before:int -> regions_after:int -> float
