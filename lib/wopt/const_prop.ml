open Whirl

type stats = {
  folded_loads : int;
  folded_ops : int;
  folded_branches : int;
}

let zero_stats = { folded_loads = 0; folded_ops = 0; folded_branches = 0 }

let add_stats a b =
  {
    folded_loads = a.folded_loads + b.folded_loads;
    folded_ops = a.folded_ops + b.folded_ops;
    folded_branches = a.folded_branches + b.folded_branches;
  }

type cvalue = Cint of int | Cflt of float

module Env = Map.Make (Int)

type ctx = {
  m : Ir.module_;
  pu : Ir.pu;
  formals : (int, unit) Hashtbl.t;
  mutable st : stats;
}

let is_scalar ctx code =
  match Ir.ty_of ctx.m ctx.pu code with
  | Symtab.Ty_scalar _ -> true
  | Symtab.Ty_array _ -> false

(* scalars we are allowed to track: local non-formal scalars, plus global
   scalars between calls *)
let trackable ctx code =
  is_scalar ctx code && not (Hashtbl.mem ctx.formals code)

let kill_globals env = Env.filter (fun code _ -> not (Ir.is_global_idx code)) env

(* every scalar STID target in a subtree (for loop bodies) *)
let stored_scalars ctx wn =
  let acc = ref [] in
  Wn.preorder
    (fun w ->
      match w.Wn.operator with
      | Wn.OPR_STID -> acc := w.Wn.st_idx :: !acc
      | Wn.OPR_CALL ->
        (* by-reference scalar arguments may be stored by the callee *)
        Array.iter
          (fun parm ->
            let a = Wn.kid parm 0 in
            if a.Wn.operator = Wn.OPR_LDA && is_scalar ctx a.Wn.st_idx then
              acc := a.Wn.st_idx :: !acc)
          w.Wn.kids
      | _ -> ())
    wn;
  !acc

let const_of_node (w : Wn.t) =
  match w.Wn.operator with
  | Wn.OPR_INTCONST -> Some (Cint w.Wn.const_val)
  | Wn.OPR_CONST -> Some (Cflt w.Wn.flt_val)
  | _ -> None

let node_of_const ~loc = function
  | Cint n -> Wn.intconst ~loc n
  | Cflt f -> Wn.fltconst ~loc f

let fold_binop op a b =
  let bool_ b = Some (Cint (if b then 1 else 0)) in
  match op, a, b with
  | Wn.OPR_ADD, Cint x, Cint y -> Some (Cint (x + y))
  | Wn.OPR_SUB, Cint x, Cint y -> Some (Cint (x - y))
  | Wn.OPR_MPY, Cint x, Cint y -> Some (Cint (x * y))
  | Wn.OPR_DIV, Cint x, Cint y when y <> 0 -> Some (Cint (x / y))
  | Wn.OPR_MOD, Cint x, Cint y when y <> 0 -> Some (Cint (x mod y))
  | Wn.OPR_ADD, Cflt x, Cflt y -> Some (Cflt (x +. y))
  | Wn.OPR_SUB, Cflt x, Cflt y -> Some (Cflt (x -. y))
  | Wn.OPR_MPY, Cflt x, Cflt y -> Some (Cflt (x *. y))
  | Wn.OPR_DIV, Cflt x, Cflt y when y <> 0.0 -> Some (Cflt (x /. y))
  | Wn.OPR_EQ, Cint x, Cint y -> bool_ (x = y)
  | Wn.OPR_NE, Cint x, Cint y -> bool_ (x <> y)
  | Wn.OPR_LT, Cint x, Cint y -> bool_ (x < y)
  | Wn.OPR_LE, Cint x, Cint y -> bool_ (x <= y)
  | Wn.OPR_GT, Cint x, Cint y -> bool_ (x > y)
  | Wn.OPR_GE, Cint x, Cint y -> bool_ (x >= y)
  | Wn.OPR_LAND, Cint x, Cint y -> bool_ (x <> 0 && y <> 0)
  | Wn.OPR_LIOR, Cint x, Cint y -> bool_ (x <> 0 || y <> 0)
  | _ -> None

let rec fold_expr ctx env (w : Wn.t) : Wn.t =
  match w.Wn.operator with
  | Wn.OPR_LDID -> (
    match Env.find_opt w.Wn.st_idx env with
    | Some c ->
      ctx.st <- add_stats ctx.st { zero_stats with folded_loads = 1 };
      node_of_const ~loc:w.Wn.linenum c
    | None -> w)
  | Wn.OPR_INTCONST | Wn.OPR_CONST | Wn.OPR_STRCONST | Wn.OPR_LDA
  | Wn.OPR_IDNAME ->
    w
  | Wn.OPR_CALL ->
    (* expression call: argument expressions folded, effects handled by the
       enclosing statement walk *)
    { w with Wn.kids = Array.map (fold_expr ctx env) w.Wn.kids }
  | _ ->
    let kids = Array.map (fold_expr ctx env) w.Wn.kids in
    let w = { w with Wn.kids = kids } in
    let folded =
      match w.Wn.operator, Array.length kids with
      | ( ( Wn.OPR_ADD | Wn.OPR_SUB | Wn.OPR_MPY | Wn.OPR_DIV | Wn.OPR_MOD
          | Wn.OPR_EQ | Wn.OPR_NE | Wn.OPR_LT | Wn.OPR_LE | Wn.OPR_GT
          | Wn.OPR_GE | Wn.OPR_LAND | Wn.OPR_LIOR ),
          2 ) -> (
        match const_of_node kids.(0), const_of_node kids.(1) with
        | Some a, Some b -> fold_binop w.Wn.operator a b
        | _ -> None)
      | Wn.OPR_NEG, 1 -> (
        match const_of_node kids.(0) with
        | Some (Cint n) -> Some (Cint (-n))
        | Some (Cflt f) -> Some (Cflt (-.f))
        | None -> None)
      | Wn.OPR_LNOT, 1 -> (
        match const_of_node kids.(0) with
        | Some (Cint n) -> Some (Cint (if n = 0 then 1 else 0))
        | _ -> None)
      | Wn.OPR_INTRINSIC_OP, 1 when w.Wn.str_val = "abs" -> (
        match const_of_node kids.(0) with
        | Some (Cint n) -> Some (Cint (abs n))
        | Some (Cflt f) -> Some (Cflt (Float.abs f))
        | None -> None)
      | Wn.OPR_INTRINSIC_OP, 2 when w.Wn.str_val = "mod" -> (
        match const_of_node kids.(0), const_of_node kids.(1) with
        | Some (Cint a), Some (Cint b) when b <> 0 -> Some (Cint (a mod b))
        | _ -> None)
      | _ -> None
    in
    (match folded with
    | Some c ->
      ctx.st <- add_stats ctx.st { zero_stats with folded_ops = 1 };
      node_of_const ~loc:w.Wn.linenum c
    | None -> w)

let env_join a b =
  Env.merge
    (fun _ va vb ->
      match va, vb with Some x, Some y when x = y -> Some x | _ -> None)
    a b

let call_effects _ctx env (w : Wn.t) =
  (* kill globals and by-reference scalar arguments *)
  let env = kill_globals env in
  Array.fold_left
    (fun env parm ->
      let a = Wn.kid parm 0 in
      if a.Wn.operator = Wn.OPR_LDA then Env.remove a.Wn.st_idx env else env)
    env w.Wn.kids

(* a statement whose expressions contain calls must apply the calls'
   effects (globals and by-reference arguments clobbered) to the outgoing
   environment, even when the statement itself is not an OPR_CALL *)
let embedded_call_effects ctx env (w : Wn.t) =
  let has_call =
    Wn.count (fun n -> n.Wn.operator = Wn.OPR_CALL) w > 0
  in
  if not has_call then env
  else
    List.fold_left
      (fun e code -> Env.remove code e)
      (kill_globals env) (stored_scalars ctx w)

let rec walk_stmt ctx env (w : Wn.t) : Wn.t * cvalue Env.t =
  match w.Wn.operator with
  | Wn.OPR_BLOCK ->
    let env = ref env in
    let kids =
      Array.map
        (fun k ->
          let k', e' = walk_stmt ctx !env k in
          env := e';
          k')
        w.Wn.kids
    in
    ({ w with Wn.kids = kids }, !env)
  | Wn.OPR_FUNC_ENTRY ->
    let body, env = walk_stmt ctx env (Wn.kid w 0) in
    ({ w with Wn.kids = [| body |] }, env)
  | Wn.OPR_STID ->
    let rhs = fold_expr ctx env (Wn.kid w 0) in
    let env = embedded_call_effects ctx env (Wn.kid w 0) in
    let env =
      match const_of_node rhs with
      | Some c when trackable ctx w.Wn.st_idx -> Env.add w.Wn.st_idx c env
      | _ -> Env.remove w.Wn.st_idx env
    in
    ({ w with Wn.kids = [| rhs |] }, env)
  | Wn.OPR_ISTORE ->
    let rhs = fold_expr ctx env (Wn.kid w 0) in
    let addr = fold_expr ctx env (Wn.kid w 1) in
    ({ w with Wn.kids = [| rhs; addr |] }, embedded_call_effects ctx env w)
  | Wn.OPR_IF -> (
    let cond = fold_expr ctx env (Wn.kid w 0) in
    match const_of_node cond with
    | Some (Cint c) ->
      ctx.st <- add_stats ctx.st { zero_stats with folded_branches = 1 };
      let live = if c <> 0 then Wn.kid w 1 else Wn.kid w 2 in
      walk_stmt ctx env live
    | _ ->
      let then_, env_t = walk_stmt ctx env (Wn.kid w 1) in
      let else_, env_e = walk_stmt ctx env (Wn.kid w 2) in
      ( { w with Wn.kids = [| cond; then_; else_ |] },
        env_join env_t env_e ))
  | Wn.OPR_DO_LOOP ->
    let init = fold_expr ctx env (Wn.kid w 1) in
    let upper = fold_expr ctx env (Wn.kid w 2) in
    let step = fold_expr ctx env (Wn.kid w 3) in
    let killed =
      List.fold_left
        (fun e code -> Env.remove code e)
        env
        ((Wn.kid w 0).Wn.st_idx :: stored_scalars ctx (Wn.kid w 4))
    in
    let body, _ = walk_stmt ctx killed (Wn.kid w 4) in
    ({ w with Wn.kids = [| Wn.kid w 0; init; upper; step; body |] }, killed)
  | Wn.OPR_WHILE_DO ->
    let killed =
      List.fold_left
        (fun e code -> Env.remove code e)
        env
        (stored_scalars ctx (Wn.kid w 1))
    in
    let cond = fold_expr ctx killed (Wn.kid w 0) in
    let body, _ = walk_stmt ctx killed (Wn.kid w 1) in
    ({ w with Wn.kids = [| cond; body |] }, killed)
  | Wn.OPR_CALL ->
    let kids = Array.map (fold_expr ctx env) w.Wn.kids in
    let w = { w with Wn.kids = kids } in
    (w, call_effects ctx env w)
  | Wn.OPR_IO | Wn.OPR_INTRINSIC_OP | Wn.OPR_RETURN ->
    ( { w with Wn.kids = Array.map (fold_expr ctx env) w.Wn.kids },
      embedded_call_effects ctx env w )
  | Wn.OPR_NOP -> (w, env)
  | _ -> ({ w with Wn.kids = Array.map (fold_expr ctx env) w.Wn.kids }, env)

let run_pu m (pu : Ir.pu) =
  let formals = Hashtbl.create 8 in
  List.iter (fun f -> Hashtbl.replace formals f ()) pu.Ir.pu_formals;
  let ctx = { m; pu; formals; st = zero_stats } in
  let body, _ = walk_stmt ctx Env.empty pu.Ir.pu_body in
  ({ pu with Ir.pu_body = body }, ctx.st)

let run (m : Ir.module_) =
  let stats = ref zero_stats in
  let pus =
    List.map
      (fun pu ->
        let pu', s = run_pu m pu in
        stats := add_stats !stats s;
        pu')
      m.Ir.m_pus
  in
  ({ m with Ir.m_pus = pus }, !stats)
