(** Dead code elimination over high-level WHIRL — the second of the paper's
    canonical shared-IR passes (Section IV-B).

    Conservative and syntactic:
    - statements following a RETURN inside the same block are dropped;
    - NOPs and empty IFs with pure conditions are dropped;
    - stores to local scalars that are never loaded anywhere in the PU and
      never passed by reference are dropped when their right-hand side is
      pure (no calls, no array accesses — those may trap or have effects
      worth keeping for the trace). *)

type stats = {
  removed_stmts : int;
  removed_stores : int;
}

val run_pu : Whirl.Ir.module_ -> Whirl.Ir.pu -> Whirl.Ir.pu * stats
val run : Whirl.Ir.module_ -> Whirl.Ir.module_ * stats
