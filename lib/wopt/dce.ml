open Whirl

type stats = {
  removed_stmts : int;
  removed_stores : int;
}

let zero = { removed_stmts = 0; removed_stores = 0 }

let add a b =
  {
    removed_stmts = a.removed_stmts + b.removed_stmts;
    removed_stores = a.removed_stores + b.removed_stores;
  }

(* a pure expression: evaluating it has no effects and cannot trap in a way
   we care to preserve *)
let rec pure (w : Wn.t) =
  match w.Wn.operator with
  | Wn.OPR_CALL | Wn.OPR_INTRINSIC_OP | Wn.OPR_ILOAD | Wn.OPR_ISTORE -> false
  | _ -> Array.for_all pure w.Wn.kids

(* scalars loaded or address-taken anywhere in the PU *)
let observed_scalars (pu : Ir.pu) =
  let tbl = Hashtbl.create 32 in
  Wn.preorder
    (fun w ->
      match w.Wn.operator with
      | Wn.OPR_LDID | Wn.OPR_LDA | Wn.OPR_IDNAME ->
        Hashtbl.replace tbl w.Wn.st_idx ()
      | _ -> ())
    pu.Ir.pu_body;
  tbl

let is_local_scalar m pu code =
  (not (Ir.is_global_idx code))
  && (not (List.mem code pu.Ir.pu_formals))
  (* the scalar named after the function carries its result: a store to it
     is observable by every caller even though the body never reads it *)
  && (Ir.st_entry m pu code).Symtab.st_name <> pu.Ir.pu_name
  &&
  match Ir.ty_of m pu code with
  | Symtab.Ty_scalar _ -> true
  | Symtab.Ty_array _ -> false

let run_pu m (pu : Ir.pu) =
  let stats = ref zero in
  let observed = observed_scalars pu in
  let rec clean_block (w : Wn.t) : Wn.t =
    let kids = ref [] in
    let terminated = ref false in
    Array.iter
      (fun k ->
        if !terminated then
          stats := add !stats { zero with removed_stmts = 1 }
        else begin
          let k = clean_stmt k in
          (match k.Wn.operator with
          | Wn.OPR_NOP -> stats := add !stats { zero with removed_stmts = 1 }
          | Wn.OPR_RETURN ->
            kids := k :: !kids;
            terminated := true
          | Wn.OPR_STID
            when is_local_scalar m pu k.Wn.st_idx
                 && (not (Hashtbl.mem observed k.Wn.st_idx))
                 && pure (Wn.kid k 0) ->
            stats := add !stats { zero with removed_stores = 1 }
          | Wn.OPR_IF
            when Wn.kid_count (Wn.kid k 1) = 0
                 && Wn.kid_count (Wn.kid k 2) = 0
                 && pure (Wn.kid k 0) ->
            stats := add !stats { zero with removed_stmts = 1 }
          | _ -> kids := k :: !kids)
        end)
      w.Wn.kids;
    { w with Wn.kids = Array.of_list (List.rev !kids) }
  and clean_stmt (w : Wn.t) : Wn.t =
    match w.Wn.operator with
    | Wn.OPR_BLOCK -> clean_block w
    | Wn.OPR_IF ->
      {
        w with
        Wn.kids =
          [| Wn.kid w 0; clean_stmt (Wn.kid w 1); clean_stmt (Wn.kid w 2) |];
      }
    | Wn.OPR_DO_LOOP ->
      {
        w with
        Wn.kids =
          [|
            Wn.kid w 0; Wn.kid w 1; Wn.kid w 2; Wn.kid w 3;
            clean_stmt (Wn.kid w 4);
          |];
      }
    | Wn.OPR_WHILE_DO ->
      { w with Wn.kids = [| Wn.kid w 0; clean_stmt (Wn.kid w 1) |] }
    | _ -> w
  in
  let body =
    { pu.Ir.pu_body with Wn.kids = [| clean_stmt (Wn.kid pu.Ir.pu_body 0) |] }
  in
  ({ pu with Ir.pu_body = body }, !stats)

let run (m : Ir.module_) =
  let stats = ref zero in
  let pus =
    List.map
      (fun pu ->
        let pu', s = run_pu m pu in
        stats := add !stats s;
        pu')
      m.Ir.m_pus
  in
  ({ m with Ir.m_pus = pus }, !stats)
