(** Constant propagation over high-level WHIRL.

    The paper motivates WHIRL with exactly this pass: "some optimization
    passes like constant propagation, dead code elimination ... have to be
    re-applied at different times and in different components of the
    compiler.  With WHIRL, a single implementation of an optimization pass
    is sufficient" (Section IV-B).  This is that single implementation; it
    runs before IPL when [uhc --wopt] is given and makes loop bounds like
    [n = 32; do i = 1, n] constant, which turns symbolic region bounds into
    the exact triplets the table shows.

    The analysis is flow-sensitive and conservative:
    - scalars assigned a constant propagate forward;
    - both IF branches are analyzed and their environments intersected;
    - scalars stored anywhere inside a loop body are unknown throughout it;
    - a call kills every global scalar and every scalar passed by
      reference;
    - constant conditions fold the IF to the live branch, and constant
      arithmetic folds bottom-up. *)

type stats = {
  folded_loads : int;     (** LDIDs replaced by constants *)
  folded_ops : int;       (** arithmetic nodes folded *)
  folded_branches : int;  (** IFs with a constant condition *)
}

val run_pu : Whirl.Ir.module_ -> Whirl.Ir.pu -> Whirl.Ir.pu * stats

val run : Whirl.Ir.module_ -> Whirl.Ir.module_ * stats
(** All PUs; stats summed. *)
