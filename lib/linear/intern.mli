(** Hash-consing support for the linear-algebra terms.

    Each syntactic class ({!Expr}, {!Constr}, {!System}) keeps one global
    intern table mapping a node's content to its unique representative; the
    representative carries a process-unique integer id, so equality of
    interned values is one integer comparison and hashing is O(1).

    Ids are allocation-order dependent (hence scheduling-dependent under
    the parallel engine and unstable across processes): they may back
    equality tests and memo keys, but never anything rendered, persisted,
    or used to order output — canonical orderings stay structural.

    Tables are sharded by content hash to keep lock contention negligible
    under the engine's worker domains, and are never cleared: dropping a
    table while live values still carry its ids would let two structurally
    equal terms intern to different ids. *)

module Make (H : sig
  type t

  val equal : t -> t -> bool
  (** Structural equality of the content, ignoring the id field. *)

  val hash : t -> int
  (** Structural hash of the content, ignoring the id field. *)

  val with_id : t -> int -> t
  (** The same node carrying its freshly assigned id. *)

  val name : string
  (** Metric suffix: hit/miss counters register as
      ["linear.intern.<name>.hits"] / [".misses"]. *)
end) : sig
  val intern : H.t -> H.t
  (** [intern node] returns the canonical representative of [node]'s
      content: the previously interned value if one exists (the candidate
      is dropped), otherwise [node] with a fresh id, now canonical. *)
end

val mix : int -> int -> int
(** Hash combinator: [mix acc h] folds [h] into [acc] (FNV-style). *)
