open Numeric

type op = Le | Eq

(* Hash-consed on (op, expr): [Expr.t] is itself interned, so the content
   key is the pair of the op tag and the expression's id. *)
type t = { id : int; expr : Expr.t; op : op }

module I = Intern.Make (struct
  type nonrec t = t

  let equal a b = a.op = b.op && Expr.equal a.expr b.expr

  let hash t =
    Intern.mix (match t.op with Le -> 3 | Eq -> 5) (Expr.id t.expr)

  let with_id t id = { t with id }
  let name = "constr"
end)

let mk expr op = I.intern { id = -1; expr; op }

(* Scale to integer coefficients with gcd 1 so that structurally equal
   constraints compare equal and the integer-negation trick in
   {!System.implies} is valid. *)
let normalize expr op =
  let l = Expr.denominator_lcm expr in
  let expr = Expr.scale (Rat.of_int l) expr in
  let g =
    Expr.fold (fun _ c acc -> Rat.gcd acc (Rat.num c)) expr
      (Rat.num (Expr.constant expr))
    |> abs
  in
  let expr = if g > 1 then Expr.scale (Rat.make 1 g) expr else expr in
  let expr =
    match op with
    | Le -> expr
    | Eq -> (
      (* canonical sign for equalities: first nonzero coefficient positive *)
      match Expr.vars expr with
      | [] -> if Rat.sign (Expr.constant expr) < 0 then Expr.neg expr else expr
      | v :: _ -> if Rat.sign (Expr.coeff v expr) < 0 then Expr.neg expr else expr)
  in
  mk expr op

let make expr op = normalize expr op

let le a b = make (Expr.sub a b) Le
let ge a b = le b a
let eq a b = make (Expr.sub a b) Eq

let between e ~lo ~hi =
  [ ge e (Expr.of_int lo); le e (Expr.of_int hi) ]

let expr t = t.expr
let op t = t.op
let id t = t.id

let is_trivial t =
  if not (Expr.is_const t.expr) then None
  else
    let c = Expr.constant t.expr in
    match t.op with
    | Le -> Some (Rat.sign c <= 0)
    | Eq -> Some (Rat.sign c = 0)

let subst v e t = make (Expr.subst v e t.expr) t.op

let map_vars f t = make (Expr.map_vars f t.expr) t.op

let holds valuation t =
  let v = Expr.eval valuation t.expr in
  match t.op with Le -> Rat.sign v <= 0 | Eq -> Rat.sign v = 0

let vars t = Expr.vars t.expr
let mem v t = Expr.mem v t.expr

let equal a b = a.id = b.id

let compare a b =
  if a.id = b.id then 0
  else
    let c = Stdlib.compare a.op b.op in
    if c <> 0 then c else Expr.compare a.expr b.expr

let pp ppf t =
  let opstr = match t.op with Le -> "<=" | Eq -> "=" in
  Format.fprintf ppf "%a %s 0" Expr.pp t.expr opstr
