(** Affine expressions [sum_i c_i * v_i + c0] with exact rational
    coefficients. *)

open Numeric

type t
(** Immutable and hash-consed: structurally equal expressions are the same
    value with the same {!id}.  Variables with zero coefficient are never
    stored. *)

val zero : t
val const : Rat.t -> t
val of_int : int -> t
val var : Var.t -> t
val monom : Rat.t -> Var.t -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val add_const : Rat.t -> t -> t

val coeff : Var.t -> t -> Rat.t
val constant : t -> Rat.t

val vars : t -> Var.t list
(** In increasing variable order. *)

val mem : Var.t -> t -> bool
val is_const : t -> bool

val subst : Var.t -> t -> t -> t
(** [subst v e t] replaces [v] by [e] in [t]. *)

val map_vars : (Var.t -> Var.t) -> t -> t
(** Renames every variable through the function (coefficients of variables
    mapped together are summed).  Used by the engine's cache to re-intern
    deserialized symbolic variables. *)

val eval : (Var.t -> Rat.t) -> t -> Rat.t
(** @raise Not_found if the valuation lacks a variable of [t]. *)

val partial_eval : (Var.t -> Rat.t option) -> t -> t
(** Substitutes the variables the valuation knows, keeps the rest. *)

val fold : (Var.t -> Rat.t -> 'a -> 'a) -> t -> 'a -> 'a

val denominator_lcm : t -> int
(** Positive lcm of all coefficient denominators (including the constant). *)

val id : t -> int
(** Unique intern id of this content (positive).  Allocation-order
    dependent: valid for equality and memo keys within the process, never
    for ordering or persistence. *)

val hash : t -> int
(** Precomputed structural hash (O(1)). *)

val equal : t -> t -> bool
(** One integer comparison (intern ids). *)

val compare : t -> t -> int
(** Structural order (scheduling-independent), with an id fast path for the
    equal case. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
