open Numeric

type t = Constr.t list
(* sorted by Constr.compare, deduplicated, no trivially-true members *)

let false_constraint = Constr.make (Expr.of_int 1) Constr.Le

let normalize cs =
  let cs = List.filter (fun c -> Constr.is_trivial c <> Some true) cs in
  if List.exists (fun c -> Constr.is_trivial c = Some false) cs then
    [ false_constraint ]
  else List.sort_uniq Constr.compare cs

let top = []
let bottom = [ false_constraint ]

let of_list cs = normalize cs
let to_list t = t
let add c t = normalize (c :: t)
let meet a b = normalize (List.rev_append a b)
let size t = List.length t

let vars t =
  List.fold_left
    (fun acc c -> List.fold_left (fun s v -> Var.Set.add v s) acc (Constr.vars c))
    Var.Set.empty t

let subst v e t = normalize (List.map (Constr.subst v e) t)

let map_vars f t = normalize (List.map (Constr.map_vars f) t)

(* Fourier-Motzkin step.  An equality mentioning [v] gives an exact
   substitution; otherwise lower bounds (coeff < 0) pair with upper bounds
   (coeff > 0).

   This eliminator also backs [project_onto]/[bounds]/[sample], whose
   results are rendered into .rgn files — it stays the single source of
   truth for anything output-sensitive.  Only answer-only queries below go
   through the packed fast path. *)
let eliminate v t =
  let mentions, free = List.partition (Constr.mem v) t in
  match
    List.find_opt (fun c -> Constr.op c = Constr.Eq) mentions
  with
  | Some e ->
    let c = Expr.coeff v (Constr.expr e) in
    (* v = -(rest)/c *)
    let rest = Expr.subst v Expr.zero (Constr.expr e) in
    let solution = Expr.scale (Rat.div Rat.minus_one c) rest in
    let others = List.filter (fun c -> not (Constr.equal c e)) mentions in
    normalize (free @ List.map (Constr.subst v solution) others)
  | None ->
    let uppers, lowers =
      List.partition (fun c -> Rat.sign (Expr.coeff v (Constr.expr c)) > 0) mentions
    in
    let combined =
      List.concat_map
        (fun lo ->
          let cl = Expr.coeff v (Constr.expr lo) in
          List.map
            (fun up ->
              let cu = Expr.coeff v (Constr.expr up) in
              (* cl < 0 < cu: cu*lo_expr - cl*up_expr removes v *)
              let e =
                Expr.sub
                  (Expr.scale cu (Constr.expr lo))
                  (Expr.scale cl (Constr.expr up))
              in
              Constr.make e Constr.Le)
            uppers)
        lowers
    in
    normalize (free @ combined)

let eliminate_all vs t = List.fold_left (fun t v -> eliminate v t) t vs

let project_onto keep t =
  let doomed = Var.Set.diff (vars t) keep in
  eliminate_all (Var.Set.elements doomed) t

(* The exact rational eliminator, kept verbatim as the reference answer for
   every fast path below (and exposed as [Reference.feasible] for
   differential tests and before/after benchmarking). *)
let ref_feasible t =
  let t = eliminate_all (Var.Set.elements (vars t)) t in
  not (List.exists (fun c -> Constr.is_trivial c = Some false) t)

(* Constant bounds on [v] once every constraint mentions only [v]. *)
let local_bounds v t =
  List.fold_left
    (fun (lo, hi) c ->
      let e = Constr.expr c in
      let cv = Expr.coeff v e in
      if Rat.sign cv = 0 then (lo, hi)
      else
        let b = Rat.div (Rat.neg (Expr.constant e)) cv in
        let tighten_lo lo = match lo with
          | None -> Some b
          | Some l -> Some (Rat.max l b)
        and tighten_hi hi = match hi with
          | None -> Some b
          | Some h -> Some (Rat.min h b)
        in
        match Constr.op c with
        | Constr.Eq -> (tighten_lo lo, tighten_hi hi)
        | Constr.Le ->
          if Rat.sign cv > 0 then (lo, tighten_hi hi) else (tighten_lo lo, hi))
    (None, None) t

let bounds v t =
  let t = project_onto (Var.Set.singleton v) t in
  if List.exists (fun c -> Constr.is_trivial c = Some false) t then
    (* infeasible system: conventionally empty bounds *)
    (Some Rat.one, Some Rat.zero)
  else local_bounds v t

(* Negation of [e <= 0] over integer points (integer coefficients assured by
   Constr normalization) is [1 - e <= 0]. *)
let negations c =
  let e = Constr.expr c in
  match Constr.op c with
  | Constr.Le -> [ Constr.make (Expr.add_const Rat.one (Expr.neg e)) Constr.Le ]
  | Constr.Eq ->
    [ Constr.make (Expr.add_const Rat.one (Expr.neg e)) Constr.Le;
      Constr.make (Expr.add_const Rat.one e) Constr.Le ]

let ref_implies t c =
  List.for_all (fun n -> not (ref_feasible (add n t))) (negations c)

let ref_includes a b = List.for_all (fun c -> ref_implies b c) a
let ref_disjoint a b = not (ref_feasible (meet a b))
let ref_equal_semantic a b = ref_includes a b && ref_includes b a

(* ---------- fast query layer ---------- *)

let use_reference = Atomic.make false
let set_reference_mode b = Atomic.set use_reference b
let reference_mode () = Atomic.get use_reference
let use_cache = Atomic.make true
let set_cache_enabled b = Atomic.set use_cache b

(* Step budget: a per-query cost cap (constraint count x variable count, a
   deterministic proxy for elimination work).  A query over budget — or one
   the fault layer targets — degrades to the interval-box answer instead of
   running an eliminator: [true] unless the box alone refutes the system.
   That direction is conservative everywhere feasibility is consumed
   (implies/disjoint degrade to "cannot prove", so regions only grow).
   Degraded answers are never memoized, so turning the budget off restores
   exact answers immediately. *)
let step_budget = Atomic.make (-1)

let set_step_budget = function
  | None -> Atomic.set step_budget (-1)
  | Some n -> Atomic.set step_budget (max 0 n)

let query_cost t = List.length t * (1 + Var.Set.cardinal (vars t))

let over_budget t =
  let b = Atomic.get step_budget in
  b >= 0 && query_cost t > b

let c_degraded = Obs.Metrics.counter "solver.degraded"

let box_feasible t =
  match Packed.pack t with
  | exception (Packed.Not_packable | Rat.Overflow) -> true
  | rows -> ( match Packed.box_of rows with None -> false | Some _ -> true)

(* Memo table for [feasible], one per domain (no locks, deterministic).
   Every table ever handed out is kept in a registry so [clear_cache] can
   drop them all: the engine's worker domains are persistent, and a clear
   that only reached the calling domain would leave answers from earlier
   runs influencing the hit/miss accounting of later ones. *)
let all_tables : (string, bool) Hashtbl.t list ref = ref []
let all_tables_mutex = Mutex.create ()

let cache_key : (string, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tbl = Hashtbl.create 512 in
      Mutex.lock all_tables_mutex;
      all_tables := tbl :: !all_tables;
      Mutex.unlock all_tables_mutex;
      tbl)

(* Global registry of systems ever computed.  A local memo miss consults it
   (one mutex round-trip, dwarfed by the elimination it precedes) so that
   hit/miss and the compute-path counters count each distinct system once,
   independent of how the pool schedules queries across domains: the first
   domain to reach a key counts a miss and computes loudly, later domains
   recompute under [Solver_stats.quiet] and count a hit. *)
let seen : (string, unit) Hashtbl.t = Hashtbl.create 4096
let seen_mutex = Mutex.create ()

let seen_add key =
  Mutex.lock seen_mutex;
  let fresh = not (Hashtbl.mem seen key) in
  if fresh then Hashtbl.add seen key ();
  Mutex.unlock seen_mutex;
  fresh

let clear_cache () =
  (* only sound while no worker is mid-query (tests, bench, and the
     pipeline's run boundaries); Hashtbl.reset on a table another domain
     reads concurrently would race *)
  Mutex.lock all_tables_mutex;
  List.iter Hashtbl.reset !all_tables;
  Mutex.unlock all_tables_mutex;
  Mutex.lock seen_mutex;
  Hashtbl.reset seen;
  Mutex.unlock seen_mutex

(* Canonical key: [t] is already sorted and deduplicated, so serializing
   (op, var ids, coefficients, constant) in order is injective. *)
let key_of t =
  let b = Buffer.create 128 in
  let add_rat r =
    Buffer.add_string b (string_of_int (Rat.num r));
    if Rat.den r <> 1 then begin
      Buffer.add_char b '/';
      Buffer.add_string b (string_of_int (Rat.den r))
    end
  in
  List.iter
    (fun c ->
      Buffer.add_char b (match Constr.op c with Constr.Le -> 'L' | Constr.Eq -> 'E');
      let e = Constr.expr c in
      Expr.fold
        (fun v r () ->
          Buffer.add_string b (string_of_int (Var.id v));
          Buffer.add_char b ':';
          add_rat r;
          Buffer.add_char b ',')
        e ();
      Buffer.add_char b '=';
      add_rat (Expr.constant e);
      Buffer.add_char b ';')
    t;
  Buffer.contents b

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Latency histograms, one per (query kind, decision tag): [hit] answered
   from the memo, [prefilter] decided by a box/syntactic check, [eliminated]
   paid for an elimination (packed FM or the reference eliminator).
   Observation is gated on [Obs.Metrics.enabled] at the call sites, so with
   metrics off the only cost left in [implies]/[disjoint] is one atomic
   load. *)
let h_feasible_hit = Obs.Metrics.histogram "solver.feasible.hit.ns"
let h_feasible_prefilter = Obs.Metrics.histogram "solver.feasible.prefilter.ns"
let h_feasible_eliminated =
  Obs.Metrics.histogram "solver.feasible.eliminated.ns"
let h_implies_hit = Obs.Metrics.histogram "solver.implies.hit.ns"
let h_implies_prefilter = Obs.Metrics.histogram "solver.implies.prefilter.ns"
let h_implies_eliminated = Obs.Metrics.histogram "solver.implies.eliminated.ns"
let h_disjoint_prefilter = Obs.Metrics.histogram "solver.disjoint.prefilter.ns"
let h_disjoint_eliminated =
  Obs.Metrics.histogram "solver.disjoint.eliminated.ns"

(* Packed feasibility: GCD-tightened first; a refutation that involved
   strict tightening is re-checked exactly so the answer always equals
   [ref_feasible].  Overflow and unpackable coefficients fall back to the
   reference eliminator.  Also returns which histogram the query belongs
   to: [`Prefilter] when the box check decided it, [`Eliminated] when an
   eliminator ran. *)
let compute_feasible t =
  try
    let rows = Packed.pack t in
    match Packed.box_of rows with
    | None ->
      Solver_stats.box_refutation ();
      (false, `Prefilter)
    | Some _ -> (
      match Packed.feasible ~tighten:true rows with
      | Packed.Feasible -> (true, `Eliminated)
      | Packed.Infeasible -> (false, `Eliminated)
      | Packed.Infeasible_tightened -> (
        Solver_stats.tighten_fallback ();
        match Packed.feasible ~tighten:false rows with
        | Packed.Feasible -> (true, `Eliminated)
        | Packed.Infeasible | Packed.Infeasible_tightened ->
          (false, `Eliminated)))
  with Packed.Not_packable | Rat.Overflow ->
    Solver_stats.overflow_fallback ();
    Solver_stats.reference_run ();
    (ref_feasible t, `Eliminated)

let feasible_hist = function
  | `Hit -> h_feasible_hit
  | `Prefilter -> h_feasible_prefilter
  | `Eliminated -> h_feasible_eliminated

let feasible t =
  Solver_stats.query ();
  if Atomic.get use_reference then begin
    Solver_stats.reference_run ();
    let t0 = now_ns () in
    let r = ref_feasible t in
    let ns = now_ns () - t0 in
    Solver_stats.add_reference_ns ns;
    if Obs.Metrics.enabled () then Obs.Hist.observe h_feasible_eliminated ns;
    r
  end
  else begin
    let t0 = now_ns () in
    (* Degradation test, checked BEFORE the memo: deterministic in the
       system's content (and the fault seed), never in scheduling or in
       whatever answers previous runs left in the per-domain memo tables.
       Degraded answers are not memoized either, so lifting the budget (or
       the fault spec) restores exact answers immediately. *)
    let degrades key =
      over_budget t || (Fault.enabled () && Fault.fires Fault.Solver ~key)
    in
    let degraded fresh =
      if fresh then Obs.Metrics.Counter.incr c_degraded;
      (box_feasible t, `Prefilter)
    in
    let r, tag =
      if Atomic.get use_cache then begin
        let tbl = Domain.DLS.get cache_key in
        let key = key_of t in
        if degrades key then degraded (seen_add key)
        else
          match Hashtbl.find_opt tbl key with
          | Some r ->
            Solver_stats.cache_hit ();
            (r, `Hit)
          | None ->
            (* first domain to reach this system counts (and computes
               loudly); later domains recompute quietly and count a hit, so
               counters do not depend on pool scheduling *)
            let fresh = seen_add key in
            if fresh then Solver_stats.cache_miss ()
            else Solver_stats.cache_hit ();
            let r, tag =
              if fresh then compute_feasible t
              else Solver_stats.quiet (fun () -> compute_feasible t)
            in
            Hashtbl.replace tbl key r;
            (r, tag)
      end
      else if degrades (if Fault.enabled () then key_of t else "") then
        degraded true
      else compute_feasible t
    in
    let ns = now_ns () - t0 in
    Solver_stats.add_fast_ns ns;
    if Obs.Metrics.enabled () then Obs.Hist.observe (feasible_hist tag) ns;
    r
  end

(* The compound queries below route every internal feasibility test through
   [feasible] — in reference mode included — so the per-mode wall-clock
   counters cover the same set of underlying queries in both modes. *)

let implies t c =
  if Atomic.get use_reference then
    List.for_all (fun n -> not (feasible (add n t))) (negations c)
  else begin
    let mt = Obs.Metrics.enabled () in
    let t0 = if mt then now_ns () else 0 in
    let observe h = if mt then Obs.Hist.observe h (now_ns () - t0) in
    if List.exists (Constr.equal c) t then begin
      (* quasi-syntactic entailment: [c] is literally one of the
         constraints *)
      Solver_stats.syntactic_hit ();
      observe h_implies_hit;
      true
    end
    else begin
      let fast =
        try
          let rows = Packed.pack t in
          match Packed.box_of rows with
          | None ->
            (* [t] itself is infeasible, so it entails anything *)
            Solver_stats.box_refutation ();
            Some true
          | Some box ->
            if Packed.box_implies box [| Packed.pack_constr c |] then begin
              Solver_stats.syntactic_hit ();
              Some true
            end
            else None
        with Packed.Not_packable | Rat.Overflow -> None
      in
      match fast with
      | Some r ->
        observe h_implies_prefilter;
        r
      | None ->
        let r =
          List.for_all (fun n -> not (feasible (add n t))) (negations c)
        in
        observe h_implies_eliminated;
        r
    end
  end

let includes a b =
  if Atomic.get use_reference then List.for_all (fun c -> implies b c) a
  else a == b || List.for_all (fun c -> implies b c) a

let disjoint a b =
  if Atomic.get use_reference then not (feasible (meet a b))
  else begin
    let mt = Obs.Metrics.enabled () in
    let t0 = if mt then now_ns () else 0 in
    let observe h = if mt then Obs.Hist.observe h (now_ns () - t0) in
    let fast =
      try
        let ra = Packed.pack a and rb = Packed.pack b in
        match (Packed.box_of ra, Packed.box_of rb) with
        | None, _ | _, None ->
          Solver_stats.box_refutation ();
          Some true
        | Some ba, Some bb ->
          if Packed.boxes_disjoint ba bb then begin
            Solver_stats.box_refutation ();
            Some true
          end
          else None
      with Packed.Not_packable | Rat.Overflow -> None
    in
    match fast with
    | Some r ->
      observe h_disjoint_prefilter;
      r
    | None ->
      let r = not (feasible (meet a b)) in
      observe h_disjoint_eliminated;
      r
  end

let equal_semantic a b = includes a b && includes b a

let simplify t =
  (* keep a constraint only if the others do not already entail it *)
  let rec go kept = function
    | [] -> kept
    | c :: rest ->
      let others = List.rev_append kept rest in
      if others <> [] && implies others c then go kept rest
      else go (c :: kept) rest
  in
  normalize (go [] t)

let pick_in_range lo hi =
  match lo, hi with
  | None, None -> Rat.zero
  | Some l, None ->
    let c = Rat.of_int (Rat.ceil l) in
    if Rat.( >= ) c l then c else l
  | None, Some h ->
    let f = Rat.of_int (Rat.floor h) in
    if Rat.( <= ) f h then f else h
  | Some l, Some h ->
    let cl = Rat.ceil l and fh = Rat.floor h in
    if cl <= fh then Rat.of_int cl
    else Rat.div (Rat.add l h) (Rat.of_int 2)

let sample t =
  let rec solve sys = function
    | [] ->
      if List.exists (fun c -> Constr.is_trivial c = Some false) sys then None
      else Some Var.Map.empty
    | v :: rest -> (
      let sys' = eliminate v sys in
      match solve sys' rest with
      | None -> None
      | Some m ->
        let sysv =
          Var.Map.fold (fun u r s -> subst u (Expr.const r) s) m sys
        in
        let lo, hi = local_bounds v sysv in
        Some (Var.Map.add v (pick_in_range lo hi) m))
  in
  match solve t (Var.Set.elements (vars t)) with
  | None -> None
  | Some m -> Some (fun v -> Var.Map.find v m)

module Reference = struct
  let feasible = ref_feasible
  let implies = ref_implies
  let includes = ref_includes
  let disjoint = ref_disjoint
  let equal_semantic = ref_equal_semantic
  let bounds = bounds
  let sample = sample
end

let pp ppf t =
  if t = [] then Format.pp_print_string ppf "{true}"
  else
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         Constr.pp)
      t
