open Numeric

(* Hash-consed canonical form: [cs] is sorted by Constr.compare,
   deduplicated, free of trivially-true members; [id] is the intern id of
   that constraint list, so equality of systems is one integer comparison
   and the solver memos key on ints instead of serialized strings.  [pk]
   caches the packed-row translation of [cs] (immutable once built): it is
   computed at most once per process instead of once per query.

   Ids are allocation-order dependent (parallel domains intern in racy
   order), so nothing rendered, persisted or ordered may depend on them:
   [compare]-based sorting stays structural in Constr/Expr, fault keys
   stay content-serialized ([key_of]), and the engine's cache digests stay
   content-based. *)

type pk_state =
  | Pk_unknown
  | Pk_rows of Packed.t
  | Pk_unpackable  (* non-integer coefficient or overflow at pack time *)

type t = { id : int; cs : Constr.t list; pk : pk_state Atomic.t }

module I = Intern.Make (struct
  type nonrec t = t

  let equal a b = List.equal Constr.equal a.cs b.cs

  let hash t =
    List.fold_left (fun acc c -> Intern.mix acc (Constr.id c)) 0x2545f491 t.cs

  let with_id t id = { t with id }
  let name = "system"
end)

(* [cs] must already be in canonical (normalized) form. *)
let intern_norm cs = I.intern { id = -1; cs; pk = Atomic.make Pk_unknown }

let false_constraint = Constr.make (Expr.of_int 1) Constr.Le

(* List-level canonicalization.  The eliminator pipeline below works on
   plain constraint lists and interns only at the public API boundary, so
   intermediate Fourier-Motzkin systems do not pay an intern round-trip. *)
let norm_l cs =
  let cs = List.filter (fun c -> Constr.is_trivial c <> Some true) cs in
  if List.exists (fun c -> Constr.is_trivial c = Some false) cs then
    [ false_constraint ]
  else List.sort_uniq Constr.compare cs

let of_list cs = intern_norm (norm_l cs)

let top = of_list []
let bottom = of_list [ false_constraint ]

let to_list t = t.cs
let id t = t.id
let equal a b = a.id = b.id
let add c t = of_list (c :: t.cs)
let meet a b = of_list (List.rev_append a.cs b.cs)
let size t = List.length t.cs

let vars_l cs =
  List.fold_left
    (fun acc c -> List.fold_left (fun s v -> Var.Set.add v s) acc (Constr.vars c))
    Var.Set.empty cs

let vars t = vars_l t.cs

let subst v e t = of_list (List.map (Constr.subst v e) t.cs)

let map_vars f t = of_list (List.map (Constr.map_vars f) t.cs)

(* Fourier-Motzkin step.  An equality mentioning [v] gives an exact
   substitution; otherwise lower bounds (coeff < 0) pair with upper bounds
   (coeff > 0).

   This eliminator also backs [project_onto]/[bounds]/[sample], whose
   results are rendered into .rgn files — it stays the single source of
   truth for anything output-sensitive.  Only answer-only queries below go
   through the packed fast path. *)
let elim_l v cs =
  let mentions, free = List.partition (Constr.mem v) cs in
  match
    List.find_opt (fun c -> Constr.op c = Constr.Eq) mentions
  with
  | Some e ->
    let c = Expr.coeff v (Constr.expr e) in
    (* v = -(rest)/c *)
    let rest = Expr.subst v Expr.zero (Constr.expr e) in
    let solution = Expr.scale (Rat.div Rat.minus_one c) rest in
    let others = List.filter (fun c -> not (Constr.equal c e)) mentions in
    norm_l (free @ List.map (Constr.subst v solution) others)
  | None ->
    let uppers, lowers =
      List.partition (fun c -> Rat.sign (Expr.coeff v (Constr.expr c)) > 0) mentions
    in
    let combined =
      List.concat_map
        (fun lo ->
          let cl = Expr.coeff v (Constr.expr lo) in
          List.map
            (fun up ->
              let cu = Expr.coeff v (Constr.expr up) in
              (* cl < 0 < cu: cu*lo_expr - cl*up_expr removes v *)
              let e =
                Expr.sub
                  (Expr.scale cu (Constr.expr lo))
                  (Expr.scale cl (Constr.expr up))
              in
              Constr.make e Constr.Le)
            uppers)
        lowers
    in
    norm_l (free @ combined)

let eliminate_all_l vs cs = List.fold_left (fun cs v -> elim_l v cs) cs vs

let eliminate v t = intern_norm (elim_l v t.cs)

let eliminate_all vs t = intern_norm (eliminate_all_l vs t.cs)

let project_onto_l keep cs =
  let doomed = Var.Set.diff (vars_l cs) keep in
  eliminate_all_l (Var.Set.elements doomed) cs

let project_onto_raw keep t = intern_norm (project_onto_l keep t.cs)

(* The exact rational eliminator, kept verbatim as the reference answer for
   every fast path below (and exposed as [Reference.feasible] for
   differential tests and before/after benchmarking). *)
let ref_feasible_l cs =
  let cs = eliminate_all_l (Var.Set.elements (vars_l cs)) cs in
  not (List.exists (fun c -> Constr.is_trivial c = Some false) cs)

(* Constant bounds on [v] once every constraint mentions only [v]. *)
let local_bounds_l v cs =
  List.fold_left
    (fun (lo, hi) c ->
      let e = Constr.expr c in
      let cv = Expr.coeff v e in
      if Rat.sign cv = 0 then (lo, hi)
      else
        let b = Rat.div (Rat.neg (Expr.constant e)) cv in
        let tighten_lo lo = match lo with
          | None -> Some b
          | Some l -> Some (Rat.max l b)
        and tighten_hi hi = match hi with
          | None -> Some b
          | Some h -> Some (Rat.min h b)
        in
        match Constr.op c with
        | Constr.Eq -> (tighten_lo lo, tighten_hi hi)
        | Constr.Le ->
          if Rat.sign cv > 0 then (lo, tighten_hi hi) else (tighten_lo lo, hi))
    (None, None) cs

let bounds_raw v t =
  let cs = project_onto_l (Var.Set.singleton v) t.cs in
  if List.exists (fun c -> Constr.is_trivial c = Some false) cs then
    (* infeasible system: conventionally empty bounds *)
    (Some Rat.one, Some Rat.zero)
  else local_bounds_l v cs

(* Negation of [e <= 0] over integer points (integer coefficients assured by
   Constr normalization) is [1 - e <= 0]. *)
let negations c =
  let e = Constr.expr c in
  match Constr.op c with
  | Constr.Le -> [ Constr.make (Expr.add_const Rat.one (Expr.neg e)) Constr.Le ]
  | Constr.Eq ->
    [ Constr.make (Expr.add_const Rat.one (Expr.neg e)) Constr.Le;
      Constr.make (Expr.add_const Rat.one e) Constr.Le ]

let ref_implies t c =
  List.for_all
    (fun n -> not (ref_feasible_l (norm_l (n :: t.cs))))
    (negations c)

let ref_includes a b = List.for_all (fun c -> ref_implies b c) a.cs
let ref_disjoint a b = not (ref_feasible_l (norm_l (List.rev_append a.cs b.cs)))
let ref_equal_semantic a b = ref_includes a b && ref_includes b a

(* ---------- fast query layer ---------- *)

let use_reference = Atomic.make false
let use_cache = Atomic.make true
let use_implies_memo = Atomic.make true

(* Learned-core flag, kept orthogonal to [use_reference] so the historical
   [set_reference_mode] toggling done by tests and the bench keeps its
   meaning: the effective core is [`Reference] whenever reference mode is
   on, otherwise [`Learned]/[`Packed] by this flag. *)
let use_learned = Atomic.make true

(* Step budget: a per-query cost cap (constraint count x variable count, a
   deterministic proxy for elimination work).  A query over budget — or one
   the fault layer targets — degrades to the interval-box answer instead of
   running an eliminator: [true] unless the box alone refutes the system.
   That direction is conservative everywhere feasibility is consumed
   (implies/disjoint degrade to "cannot prove", so regions only grow).
   Degraded answers are never memoized, so turning the budget off restores
   exact answers immediately. *)
let step_budget = Atomic.make (-1)

(* Small-system threshold: at or below this [query_cost], packed setup
   (pack + box build + row allocation) is not worth paying and [feasible]
   routes the query straight to the reference eliminator.  The balance is
   host-dependent — a threshold sweep over the NAS LU region systems put
   the crossover at cost 2 (single-row systems) on the reference host,
   with larger values a mild pessimization — so the default stays at the
   measured crossover and [set_small_threshold] exposes the knob.  Each
   routing is recorded in [Solver_stats.small_runs]. *)
let small_threshold = Atomic.make 2

(* The guard below runs on every implies query, so the conjunction over
   the cold knobs is cached in one atomic refreshed by the setters.
   [Fault.enabled] cannot be folded in — the fault layer is configured
   outside this module — but it is itself a single atomic load. *)
let memo_ok_cached = Atomic.make true

let refresh_memo_ok () =
  Atomic.set memo_ok_cached
    (Atomic.get use_implies_memo && Atomic.get use_cache
    && (not (Atomic.get use_reference))
    && Atomic.get step_budget < 0)

let set_reference_mode b =
  Atomic.set use_reference b;
  refresh_memo_ok ()

let reference_mode () = Atomic.get use_reference

let set_cache_enabled b =
  Atomic.set use_cache b;
  refresh_memo_ok ()

let set_implies_memo_enabled b =
  Atomic.set use_implies_memo b;
  refresh_memo_ok ()

let implies_memo_enabled () = Atomic.get use_implies_memo

type core = [ `Learned | `Packed | `Reference ]

let set_solver_core (c : core) =
  (match c with
  | `Reference ->
    Atomic.set use_reference true;
    Atomic.set use_learned false
  | `Packed ->
    Atomic.set use_reference false;
    Atomic.set use_learned false
  | `Learned ->
    Atomic.set use_reference false;
    Atomic.set use_learned true);
  refresh_memo_ok ()

let solver_core () : core =
  if Atomic.get use_reference then `Reference
  else if Atomic.get use_learned then `Learned
  else `Packed

let set_step_budget n =
  (match n with
  | None -> Atomic.set step_budget (-1)
  | Some n -> Atomic.set step_budget (max 0 n));
  refresh_memo_ok ()

let get_step_budget () =
  let b = Atomic.get step_budget in
  if b < 0 then None else Some b

let set_small_threshold n = Atomic.set small_threshold (max 0 n)

let query_cost t = List.length t.cs * (1 + Var.Set.cardinal (vars t))

let over_budget t =
  let b = Atomic.get step_budget in
  b >= 0 && query_cost t > b

let c_degraded = Obs.Metrics.counter "solver.degraded"

(* Packed rows, computed once per interned system.  Rows are immutable
   after [Packed.pack]; a racing duplicate compute stores an equivalent
   value, so a plain atomic set suffices.  [None] = not packable (cached
   too).  [Packed.pack] maintains no Solver_stats counters, so caching it
   does not change any counted totals. *)
let packed_rows t =
  match Atomic.get t.pk with
  | Pk_rows rows -> Some rows
  | Pk_unpackable -> None
  | Pk_unknown -> (
    match Packed.pack t.cs with
    | rows ->
      Atomic.set t.pk (Pk_rows rows);
      Some rows
    | exception (Packed.Not_packable | Rat.Overflow) ->
      Atomic.set t.pk Pk_unpackable;
      None)

let box_feasible t =
  match packed_rows t with
  | None -> true
  | Some rows -> ( match Packed.box_of rows with None -> false | Some _ -> true)

(* Memo table for [feasible], one per domain (no locks, deterministic),
   keyed by intern id.  Every table ever handed out is kept in a registry
   so [clear_cache] can drop them all: the engine's worker domains are
   persistent, and a clear that only reached the calling domain would
   leave answers from earlier runs influencing the hit/miss accounting of
   later ones. *)
let all_tables : (int, bool) Hashtbl.t list ref = ref []
let all_tables_mutex = Mutex.create ()

let cache_key : (int, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tbl = Hashtbl.create 512 in
      Mutex.lock all_tables_mutex;
      all_tables := tbl :: !all_tables;
      Mutex.unlock all_tables_mutex;
      tbl)

(* Global registry of systems ever computed.  A local memo miss consults it
   (one mutex round-trip, dwarfed by the elimination it precedes) so that
   hit/miss and the compute-path counters count each distinct system once,
   independent of how the pool schedules queries across domains: the first
   domain to reach an id counts a miss and computes loudly, later domains
   recompute under [Solver_stats.quiet] and count a hit. *)
let seen : (int, unit) Hashtbl.t = Hashtbl.create 4096
let seen_mutex = Mutex.create ()

let seen_add sid =
  Mutex.lock seen_mutex;
  let fresh = not (Hashtbl.mem seen sid) in
  if fresh then Hashtbl.add seen sid ();
  Mutex.unlock seen_mutex;
  fresh

(* Global memo for [implies], keyed by (system id, constraint id).  One
   shared mutex-guarded table rather than per-domain storage: an implies
   answer is the product of several feasibility eliminations, so sharing
   hits across domains is worth the lock, and the seen-registry discipline
   below keeps the hit/miss counts scheduling-independent.  Bypassed (and
   not consulted) whenever answers could be degraded (budget / fault
   injection) or the run wants raw paths (reference mode, cache off). *)
let implies_memo : (int * int, bool) Hashtbl.t = Hashtbl.create 4096
let implies_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 4096
let implies_mutex = Mutex.create ()

let implies_memo_find key =
  Mutex.lock implies_mutex;
  let cached = Hashtbl.find_opt implies_memo key in
  let fresh = not (Hashtbl.mem implies_seen key) in
  if fresh then Hashtbl.add implies_seen key ();
  Mutex.unlock implies_mutex;
  (cached, fresh)

let implies_memo_store key r =
  Mutex.lock implies_mutex;
  Hashtbl.replace implies_memo key r;
  Mutex.unlock implies_mutex

let clear_cache () =
  (* only sound while no worker is mid-query (tests, bench, and the
     pipeline's run boundaries); Hashtbl.reset on a table another domain
     reads concurrently would race *)
  Mutex.lock all_tables_mutex;
  List.iter Hashtbl.reset !all_tables;
  Mutex.unlock all_tables_mutex;
  Mutex.lock seen_mutex;
  Hashtbl.reset seen;
  Mutex.unlock seen_mutex;
  Mutex.lock implies_mutex;
  Hashtbl.reset implies_memo;
  Hashtbl.reset implies_seen;
  Mutex.unlock implies_mutex;
  (* learned contexts (direction thresholds, activity, bounds/projection
     memos) are caches of exact facts with the same lifetime as the
     implies memo: flush them through the same path *)
  Context.clear ()

(* Canonical content key: [t.cs] is sorted and deduplicated, so serializing
   (op, var ids, coefficients, constant) in order is injective.  Only the
   fault-injection layer still needs this (fault firing must be a pure
   function of the system's content, not of scheduling-dependent intern
   ids); the memo tables key on ids. *)
let key_of t =
  let b = Buffer.create 128 in
  let add_rat r =
    Buffer.add_string b (string_of_int (Rat.num r));
    if Rat.den r <> 1 then begin
      Buffer.add_char b '/';
      Buffer.add_string b (string_of_int (Rat.den r))
    end
  in
  List.iter
    (fun c ->
      Buffer.add_char b (match Constr.op c with Constr.Le -> 'L' | Constr.Eq -> 'E');
      let e = Constr.expr c in
      Expr.fold
        (fun v r () ->
          Buffer.add_string b (string_of_int (Var.id v));
          Buffer.add_char b ':';
          add_rat r;
          Buffer.add_char b ',')
        e ();
      Buffer.add_char b '=';
      add_rat (Expr.constant e);
      Buffer.add_char b ';')
    t.cs;
  Buffer.contents b

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Latency histograms, one per (query kind, decision tag): [hit] answered
   from the memo, [prefilter] decided by a box/syntactic check, [eliminated]
   paid for an elimination (packed FM or the reference eliminator).
   Observation is gated on [Obs.Metrics.enabled] at the call sites, so with
   metrics off the only cost left in [implies]/[disjoint] is one atomic
   load. *)
let h_feasible_hit = Obs.Metrics.histogram "solver.feasible.hit.ns"
let h_feasible_prefilter = Obs.Metrics.histogram "solver.feasible.prefilter.ns"
let h_feasible_eliminated =
  Obs.Metrics.histogram "solver.feasible.eliminated.ns"
let h_implies_hit = Obs.Metrics.histogram "solver.implies.hit.ns"
let h_implies_prefilter = Obs.Metrics.histogram "solver.implies.prefilter.ns"
let h_implies_eliminated = Obs.Metrics.histogram "solver.implies.eliminated.ns"
let h_disjoint_prefilter = Obs.Metrics.histogram "solver.disjoint.prefilter.ns"
let h_disjoint_eliminated =
  Obs.Metrics.histogram "solver.disjoint.eliminated.ns"

(* Packed feasibility: GCD-tightened first; a refutation that involved
   strict tightening is re-checked exactly so the answer always equals
   [ref_feasible_l].  Overflow and unpackable coefficients fall back to the
   reference eliminator.  Also returns which histogram the query belongs
   to: [`Prefilter] when the box check decided it, [`Eliminated] when an
   eliminator ran. *)
let compute_feasible t =
  let fallback () =
    Solver_stats.overflow_fallback ();
    Solver_stats.reference_run ();
    (ref_feasible_l t.cs, `Eliminated)
  in
  if query_cost t <= Atomic.get small_threshold then begin
    (* tiny system: packed setup costs more than the reference eliminator
       spends solving it outright *)
    Solver_stats.small_run ();
    (ref_feasible_l t.cs, `Eliminated)
  end
  else
  match packed_rows t with
  | None -> fallback ()
  | Some rows -> (
    try
      match Packed.box_of rows with
      | None ->
        Solver_stats.box_refutation ();
        (false, `Prefilter)
      | Some _ -> (
        match Packed.feasible ~tighten:true rows with
        | Packed.Feasible -> (true, `Eliminated)
        | Packed.Infeasible -> (false, `Eliminated)
        | Packed.Infeasible_tightened -> (
          Solver_stats.tighten_fallback ();
          match Packed.feasible ~tighten:false rows with
          | Packed.Feasible -> (true, `Eliminated)
          | Packed.Infeasible | Packed.Infeasible_tightened ->
            (false, `Eliminated)))
    with Packed.Not_packable | Rat.Overflow -> fallback ())

let feasible_hist = function
  | `Hit -> h_feasible_hit
  | `Prefilter -> h_feasible_prefilter
  | `Eliminated -> h_feasible_eliminated

let feasible t =
  Solver_stats.query ();
  if Atomic.get use_reference then begin
    Solver_stats.reference_run ();
    let t0 = now_ns () in
    let r = ref_feasible_l t.cs in
    let ns = now_ns () - t0 in
    Solver_stats.add_reference_ns ns;
    if Obs.Metrics.enabled () then Obs.Hist.observe h_feasible_eliminated ns;
    r
  end
  else begin
    let t0 = now_ns () in
    (* Degradation test, checked BEFORE the memo: deterministic in the
       system's content (and the fault seed), never in scheduling or in
       whatever answers previous runs left in the per-domain memo tables.
       Degraded answers are not memoized either, so lifting the budget (or
       the fault spec) restores exact answers immediately.  The fault key
       stays the content serialization — intern ids differ across runs —
       and is only built when a fault spec is active. *)
    let degrades () =
      over_budget t
      || (Fault.enabled () && Fault.fires Fault.Solver ~key:(key_of t))
    in
    let degraded fresh =
      if fresh then Obs.Metrics.Counter.incr c_degraded;
      (box_feasible t, `Prefilter)
    in
    let r, tag =
      if Atomic.get use_cache then begin
        let tbl = Domain.DLS.get cache_key in
        if degrades () then degraded (seen_add t.id)
        else
          match Hashtbl.find_opt tbl t.id with
          | Some r ->
            Solver_stats.cache_hit ();
            (r, `Hit)
          | None ->
            (* first domain to reach this system counts (and computes
               loudly); later domains recompute quietly and count a hit, so
               counters do not depend on pool scheduling *)
            let fresh = seen_add t.id in
            if fresh then Solver_stats.cache_miss ()
            else Solver_stats.cache_hit ();
            let r, tag =
              if fresh then compute_feasible t
              else Solver_stats.quiet (fun () -> compute_feasible t)
            in
            Hashtbl.replace tbl t.id r;
            (r, tag)
      end
      else if degrades () then degraded true
      else compute_feasible t
    in
    let ns = now_ns () - t0 in
    Solver_stats.add_fast_ns ns;
    if Obs.Metrics.enabled () then Obs.Hist.observe (feasible_hist tag) ns;
    r
  end

(* The compound queries below route every internal feasibility test through
   [feasible] — in reference mode included — so the per-mode wall-clock
   counters cover the same set of underlying queries in both modes. *)

let implies_uncached t c =
  if Atomic.get use_reference then
    List.for_all (fun n -> not (feasible (add n t))) (negations c)
  else begin
    let mt = Obs.Metrics.enabled () in
    let t0 = if mt then now_ns () else 0 in
    let observe h = if mt then Obs.Hist.observe h (now_ns () - t0) in
    if List.exists (Constr.equal c) t.cs then begin
      (* quasi-syntactic entailment: [c] is literally one of the
         constraints *)
      Solver_stats.syntactic_hit ();
      observe h_implies_hit;
      true
    end
    else begin
      let fast =
        match packed_rows t with
        | None -> None
        | Some rows -> (
          try
            match Packed.box_of rows with
            | None ->
              (* [t] itself is infeasible, so it entails anything *)
              Solver_stats.box_refutation ();
              Some true
            | Some box ->
              if Packed.box_implies box [| Packed.pack_constr c |] then begin
                Solver_stats.syntactic_hit ();
                Some true
              end
              else None
          with Packed.Not_packable | Rat.Overflow -> None)
      in
      match fast with
      | Some r ->
        observe h_implies_prefilter;
        r
      | None ->
        let r =
          List.for_all (fun n -> not (feasible (add n t))) (negations c)
        in
        observe h_implies_eliminated;
        r
    end
  end

(* ---------- learned core: assumption queries over persistent contexts ----------

   [implies t c] is the conjunction over the negations [n] of [c] of
   "[t /\ n] is infeasible".  The learned core answers each such
   assumption query through the persistent {!Context} of [t]:

   - the direction-threshold table first: rational feasibility of
     [t /\ (d.x <= q)] is monotone in [q] with a single threshold (the
     infimum of [d.x] over [t], attained for closed rational polyhedra),
     so one recorded infeasible outcome is a Farkas certificate refuting
     every tighter [q] by a comparison (cut hit), and one recorded
     feasible outcome is a witness answering every looser [q] (bound
     hit) — both exact;
   - otherwise one packed elimination over the base rows plus the single
     assumption row, ordered by the context's conflict activity, whose
     outcome is learned into the table.

   Eliminations triggered here run under [Solver_stats.quiet]: whether a
   particular query pays an elimination or hits a learned fact depends on
   query arrival order across domains, so letting them bump the
   deterministic counters would break jobs-invariance.  The work is
   counted in the unconditional ctx_* telemetry instead. *)

(* Direction key of a packed inequality row [cs.x + k <= 0]: the linear
   part divided by its own gcd [g].  Constr normalization folds the
   constant into the gcd, so rows sharing a direction but not a constant
   normalize differently — the threshold table must renormalize the linear
   part alone.  The query value is [q = -k/g], making the row
   [key.x <= q].  ([pack_constr] guarantees no [min_int] anywhere.) *)
let dir_of_row r =
  let cs = Packed.row_coeffs r in
  let g = Array.fold_left (fun g c -> Rat.gcd g c) 0 cs in
  let cs' = if g = 1 then cs else Array.map (fun c -> c / g) cs in
  ((Packed.row_ids r, cs'), Rat.make (-Packed.row_const r) g)

(* Occurrence counts over the base rows, seeding the context's activity. *)
let activity_seed rows () =
  let occ : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun r ->
      Array.iter
        (fun id ->
          match Hashtbl.find_opt occ id with
          | Some n -> incr n
          | None -> Hashtbl.add occ id (ref 1))
        (Packed.row_ids r))
    rows;
  Hashtbl.fold (fun id n acc -> (id, !n) :: acc) occ []

(* Is [t /\ n] feasible, for a single negation constraint [n]?  Exact in
   every branch (the tighten refutation is re-run exactly before being
   learned). *)
let assume_feasible ctx rows t n =
  match Packed.pack_constr n with
  | exception Packed.Not_packable ->
    (* negation does not pack: use the generic memoized path *)
    feasible (add n t)
  | nrow ->
    if Packed.is_const nrow then
      (* constant assumption: either contradictory on its own or vacuous *)
      if Packed.const_infeasible nrow then false else feasible t
    else begin
      let key, q = dir_of_row nrow in
      match Context.check_dir ctx key q with
      | Some r -> r
      | None ->
        Solver_stats.ctx_elim ();
        Context.ensure_activity ctx (activity_seed rows);
        let prio = Context.prio ctx in
        let all = Array.append rows [| nrow |] in
        let r =
          Solver_stats.quiet (fun () ->
              try
                match Packed.feasible ~prio ~tighten:true all with
                | Packed.Feasible -> true
                | Packed.Infeasible -> false
                | Packed.Infeasible_tightened -> (
                  match Packed.feasible ~prio ~tighten:false all with
                  | Packed.Feasible -> true
                  | Packed.Infeasible | Packed.Infeasible_tightened -> false)
              with Packed.Not_packable | Rat.Overflow ->
                ref_feasible_l (norm_l (n :: t.cs)))
        in
        Context.learn_dir ctx key q r;
        (* conflict: bump the assumption's variables so later eliminations
           on this system tackle the contentious dimensions first *)
        if not r then Context.bump_vars ctx (Packed.row_ids nrow);
        r
    end

let implies_learned t c =
  let mt = Obs.Metrics.enabled () in
  let t0 = if mt then now_ns () else 0 in
  let observe h = if mt then Obs.Hist.observe h (now_ns () - t0) in
  if List.exists (Constr.equal c) t.cs then begin
    Solver_stats.syntactic_hit ();
    observe h_implies_hit;
    true
  end
  else
    match packed_rows t with
    | None ->
      (* unpackable system: nothing for a packed context to learn from *)
      let r = List.for_all (fun n -> not (feasible (add n t))) (negations c) in
      observe h_implies_eliminated;
      r
    | Some rows -> (
      let ctx = Context.find t.id in
      match Context.box ctx ~build:(fun () -> Packed.box_of rows) with
      | None ->
        (* [t] itself is infeasible, so it entails anything *)
        Solver_stats.box_refutation ();
        observe h_implies_prefilter;
        true
      | Some box -> (
        let pre =
          try
            if Packed.box_implies box [| Packed.pack_constr c |] then begin
              Solver_stats.syntactic_hit ();
              Some true
            end
            else None
          with Packed.Not_packable | Rat.Overflow -> None
        in
        match pre with
        | Some r ->
          observe h_implies_prefilter;
          r
        | None ->
          Context.decay ctx;
          let r =
            List.for_all (fun n -> not (assume_feasible ctx rows t n)) (negations c)
          in
          observe h_implies_eliminated;
          r))

let implies_compute t c =
  if Atomic.get use_learned then implies_learned t c else implies_uncached t c

(* The memo only applies when every answer underneath is exact and the run
   is not deliberately measuring raw paths: degraded answers (budget /
   fault) must not be frozen, and reference / cache-off modes exist to
   time the unmemoized paths.  The same guard gates the learned contexts
   and the L1 tables — they are memo layers too. *)
let implies_memo_ok () = Atomic.get memo_ok_cached && not (Fault.enabled ())

(* Per-domain L1 answer table for [implies], in front of the mutex-guarded
   global memo: on join-heavy workloads ~95% of implies queries are
   repeats, and the global-memo hit path (lock + tuple-keyed probe + two
   clock reads) costs ~4x the query's useful work.  Keyed by an injective
   int combination of the two intern ids; registered in [all_tables] so
   [clear_cache] drops it with everything else. *)
let implies_l1_key : (int, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let tbl = Hashtbl.create 1024 in
      Mutex.lock all_tables_mutex;
      all_tables := tbl :: !all_tables;
      Mutex.unlock all_tables_mutex;
      tbl)

let implies t c =
  Solver_stats.implies_query ();
  if not (implies_memo_ok ()) then begin
    let t0 = now_ns () in
    Solver_stats.implies_fresh ();
    let r = implies_uncached t c in
    Solver_stats.add_implies_ns (now_ns () - t0);
    r
  end
  else begin
    (* the L1 table belongs to the learned core: [--solver-core packed]
       must reproduce the plain global-memo behavior it benchmarks *)
    let l1 =
      if Atomic.get use_learned then Some (Domain.DLS.get implies_l1_key)
      else None
    in
    let lk = (t.id lsl 31) lor Constr.id c in
    match
      match l1 with Some l1 -> Hashtbl.find_opt l1 lk | None -> None
    with
    | Some r ->
      (* L1 hits are deliberately untimed: two clock reads would cost more
         than the lookup itself, and the wall sums are already excluded
         from the deterministic stats *)
      Solver_stats.implies_l1_hit ();
      r
    | None ->
      let t0 = now_ns () in
      let key = (t.id, Constr.id c) in
      let cached, fresh = implies_memo_find key in
      (* fresh computes are counted against the seen registry, not the
         memo lookup: two domains racing on a fresh pair both miss the
         memo, but only the first is fresh — so (queries - fresh), the
         derived memo-hit total, is identical at every --jobs setting *)
      if fresh then Solver_stats.implies_fresh ();
      let r =
        match cached with
        | Some r -> r
        | None ->
          let r =
            if fresh then implies_compute t c
            else Solver_stats.quiet (fun () -> implies_compute t c)
          in
          implies_memo_store key r;
          r
      in
      (match l1 with Some l1 -> Hashtbl.replace l1 lk r | None -> ());
      Solver_stats.add_implies_ns (now_ns () - t0);
      r
  end

let includes a b =
  if Atomic.get use_reference then List.for_all (fun c -> implies b c) a.cs
  else equal a b || List.for_all (fun c -> implies b c) a.cs

let disjoint a b =
  if Atomic.get use_reference then not (feasible (meet a b))
  else begin
    let mt = Obs.Metrics.enabled () in
    let t0 = if mt then now_ns () else 0 in
    let observe h = if mt then Obs.Hist.observe h (now_ns () - t0) in
    let fast =
      match (packed_rows a, packed_rows b) with
      | Some ra, Some rb -> (
        try
          match (Packed.box_of ra, Packed.box_of rb) with
          | None, _ | _, None ->
            Solver_stats.box_refutation ();
            Some true
          | Some ba, Some bb ->
            if Packed.boxes_disjoint ba bb then begin
              Solver_stats.box_refutation ();
              Some true
            end
            else None
        with Packed.Not_packable | Rat.Overflow -> None)
      | _ -> None
    in
    match fast with
    | Some r ->
      observe h_disjoint_prefilter;
      r
    | None ->
      let r = not (feasible (meet a b)) in
      observe h_disjoint_eliminated;
      r
  end

let equal_semantic a b = includes a b && includes b a

let simplify t =
  (* keep a constraint only if the others do not already entail it *)
  let rec go kept = function
    | [] -> kept
    | c :: rest ->
      let others = List.rev_append kept rest in
      if others <> [] && implies (of_list others) c then go kept rest
      else go (c :: kept) rest
  in
  of_list (go [] t.cs)

let pick_in_range lo hi =
  match lo, hi with
  | None, None -> Rat.zero
  | Some l, None ->
    let c = Rat.of_int (Rat.ceil l) in
    if Rat.( >= ) c l then c else l
  | None, Some h ->
    let f = Rat.of_int (Rat.floor h) in
    if Rat.( <= ) f h then f else h
  | Some l, Some h ->
    let cl = Rat.ceil l and fh = Rat.floor h in
    if cl <= fh then Rat.of_int cl
    else Rat.div (Rat.add l h) (Rat.of_int 2)

let sample t =
  let subst_l v e cs = norm_l (List.map (Constr.subst v e) cs) in
  let rec solve sys = function
    | [] ->
      if List.exists (fun c -> Constr.is_trivial c = Some false) sys then None
      else Some Var.Map.empty
    | v :: rest -> (
      let sys' = elim_l v sys in
      match solve sys' rest with
      | None -> None
      | Some m ->
        let sysv =
          Var.Map.fold (fun u r s -> subst_l u (Expr.const r) s) m sys
        in
        let lo, hi = local_bounds_l v sysv in
        Some (Var.Map.add v (pick_in_range lo hi) m))
  in
  match solve t.cs (Var.Set.elements (vars t)) with
  | None -> None
  | Some m -> Some (fun v -> Var.Map.find v m)

(* Output-sensitive results (bounds, projections) memoized through the
   learned contexts: the region layer re-derives both for the same
   interned system on every region rebuild (90%+ intern hit rate), each
   time paying the reference eliminator.  The stored value is exactly what
   one reference computation produced — these are rendered into .rgn
   files, and byte-identity holds because a memo hit returns the identical
   interned value a recompute would. *)
let ctx_memo_ok () = Atomic.get use_learned && Atomic.get use_cache

let bounds v t =
  if ctx_memo_ok () then begin
    let ctx = Context.find t.id in
    match Context.find_bounds ctx (Var.id v) with
    | Some b -> b
    | None ->
      let b = bounds_raw v t in
      Context.store_bounds ctx (Var.id v) b;
      b
  end
  else bounds_raw v t

let project_onto keep t =
  if ctx_memo_ok () then begin
    let ctx = Context.find t.id in
    let key = List.map Var.id (Var.Set.elements keep) in
    match Context.find_proj ctx key with
    | Some cs -> intern_norm cs
    | None ->
      let r = project_onto_raw keep t in
      Context.store_proj ctx key r.cs;
      r
  end
  else project_onto_raw keep t

module Reference = struct
  let feasible t = ref_feasible_l t.cs
  let implies = ref_implies
  let includes = ref_includes
  let disjoint = ref_disjoint
  let equal_semantic = ref_equal_semantic
  let bounds = bounds_raw
  let sample = sample
end

let pp ppf t =
  if t.cs = [] then Format.pp_print_string ppf "{true}"
  else
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         Constr.pp)
      t.cs
