open Numeric

type t = Constr.t list
(* sorted by Constr.compare, deduplicated, no trivially-true members *)

let false_constraint = Constr.make (Expr.of_int 1) Constr.Le

let normalize cs =
  let cs = List.filter (fun c -> Constr.is_trivial c <> Some true) cs in
  if List.exists (fun c -> Constr.is_trivial c = Some false) cs then
    [ false_constraint ]
  else List.sort_uniq Constr.compare cs

let top = []
let bottom = [ false_constraint ]

let of_list cs = normalize cs
let to_list t = t
let add c t = normalize (c :: t)
let meet a b = normalize (List.rev_append a b)
let size t = List.length t

let vars t =
  List.fold_left
    (fun acc c -> List.fold_left (fun s v -> Var.Set.add v s) acc (Constr.vars c))
    Var.Set.empty t

let subst v e t = normalize (List.map (Constr.subst v e) t)

let map_vars f t = normalize (List.map (Constr.map_vars f) t)

(* Fourier-Motzkin step.  An equality mentioning [v] gives an exact
   substitution; otherwise lower bounds (coeff < 0) pair with upper bounds
   (coeff > 0). *)
let eliminate v t =
  let mentions, free = List.partition (Constr.mem v) t in
  match
    List.find_opt (fun c -> Constr.op c = Constr.Eq) mentions
  with
  | Some e ->
    let c = Expr.coeff v (Constr.expr e) in
    (* v = -(rest)/c *)
    let rest = Expr.subst v Expr.zero (Constr.expr e) in
    let solution = Expr.scale (Rat.div Rat.minus_one c) rest in
    let others = List.filter (fun c -> not (Constr.equal c e)) mentions in
    normalize (free @ List.map (Constr.subst v solution) others)
  | None ->
    let uppers, lowers =
      List.partition (fun c -> Rat.sign (Expr.coeff v (Constr.expr c)) > 0) mentions
    in
    let combined =
      List.concat_map
        (fun lo ->
          let cl = Expr.coeff v (Constr.expr lo) in
          List.map
            (fun up ->
              let cu = Expr.coeff v (Constr.expr up) in
              (* cl < 0 < cu: cu*lo_expr - cl*up_expr removes v *)
              let e =
                Expr.sub
                  (Expr.scale cu (Constr.expr lo))
                  (Expr.scale cl (Constr.expr up))
              in
              Constr.make e Constr.Le)
            uppers)
        lowers
    in
    normalize (free @ combined)

let eliminate_all vs t = List.fold_left (fun t v -> eliminate v t) t vs

let project_onto keep t =
  let doomed = Var.Set.diff (vars t) keep in
  eliminate_all (Var.Set.elements doomed) t

let feasible t =
  let t = eliminate_all (Var.Set.elements (vars t)) t in
  not (List.exists (fun c -> Constr.is_trivial c = Some false) t)

(* Constant bounds on [v] once every constraint mentions only [v]. *)
let local_bounds v t =
  List.fold_left
    (fun (lo, hi) c ->
      let e = Constr.expr c in
      let cv = Expr.coeff v e in
      if Rat.sign cv = 0 then (lo, hi)
      else
        let b = Rat.div (Rat.neg (Expr.constant e)) cv in
        let tighten_lo lo = match lo with
          | None -> Some b
          | Some l -> Some (Rat.max l b)
        and tighten_hi hi = match hi with
          | None -> Some b
          | Some h -> Some (Rat.min h b)
        in
        match Constr.op c with
        | Constr.Eq -> (tighten_lo lo, tighten_hi hi)
        | Constr.Le ->
          if Rat.sign cv > 0 then (lo, tighten_hi hi) else (tighten_lo lo, hi))
    (None, None) t

let bounds v t =
  let t = project_onto (Var.Set.singleton v) t in
  if List.exists (fun c -> Constr.is_trivial c = Some false) t then
    (* infeasible system: conventionally empty bounds *)
    (Some Rat.one, Some Rat.zero)
  else local_bounds v t

(* Negation of [e <= 0] over integer points (integer coefficients assured by
   Constr normalization) is [1 - e <= 0]. *)
let negations c =
  let e = Constr.expr c in
  match Constr.op c with
  | Constr.Le -> [ Constr.make (Expr.add_const Rat.one (Expr.neg e)) Constr.Le ]
  | Constr.Eq ->
    [ Constr.make (Expr.add_const Rat.one (Expr.neg e)) Constr.Le;
      Constr.make (Expr.add_const Rat.one e) Constr.Le ]

let implies t c =
  List.for_all (fun n -> not (feasible (add n t))) (negations c)

let includes a b = List.for_all (fun c -> implies b c) a

let disjoint a b = not (feasible (meet a b))

let equal_semantic a b = includes a b && includes b a

let simplify t =
  (* keep a constraint only if the others do not already entail it *)
  let rec go kept = function
    | [] -> kept
    | c :: rest ->
      let others = List.rev_append kept rest in
      if others <> [] && implies others c then go kept rest
      else go (c :: kept) rest
  in
  normalize (go [] t)

let pick_in_range lo hi =
  match lo, hi with
  | None, None -> Rat.zero
  | Some l, None ->
    let c = Rat.of_int (Rat.ceil l) in
    if Rat.( >= ) c l then c else l
  | None, Some h ->
    let f = Rat.of_int (Rat.floor h) in
    if Rat.( <= ) f h then f else h
  | Some l, Some h ->
    let cl = Rat.ceil l and fh = Rat.floor h in
    if cl <= fh then Rat.of_int cl
    else Rat.div (Rat.add l h) (Rat.of_int 2)

let sample t =
  let rec solve sys = function
    | [] ->
      if List.exists (fun c -> Constr.is_trivial c = Some false) sys then None
      else Some Var.Map.empty
    | v :: rest -> (
      let sys' = eliminate v sys in
      match solve sys' rest with
      | None -> None
      | Some m ->
        let sysv =
          Var.Map.fold (fun u r s -> subst u (Expr.const r) s) m sys
        in
        let lo, hi = local_bounds v sysv in
        Some (Var.Map.add v (pick_in_range lo hi) m))
  in
  match solve t (Var.Set.elements (vars t)) with
  | None -> None
  | Some m -> Some (fun v -> Var.Map.find v m)

let pp ppf t =
  if t = [] then Format.pp_print_string ppf "{true}"
  else
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         Constr.pp)
      t
