open Numeric

type t = { terms : Rat.t Var.Map.t; constant : Rat.t }

let zero = { terms = Var.Map.empty; constant = Rat.zero }

let const c = { terms = Var.Map.empty; constant = c }

let of_int n = const (Rat.of_int n)

let norm_coeff c = if Rat.equal c Rat.zero then None else Some c

let monom c v =
  match norm_coeff c with
  | None -> zero
  | Some c -> { terms = Var.Map.singleton v c; constant = Rat.zero }

let var v = monom Rat.one v

let add a b =
  let terms =
    Var.Map.union (fun _ ca cb -> norm_coeff (Rat.add ca cb)) a.terms b.terms
  in
  { terms; constant = Rat.add a.constant b.constant }

let scale k t =
  if Rat.equal k Rat.zero then zero
  else
    { terms = Var.Map.map (Rat.mul k) t.terms; constant = Rat.mul k t.constant }

let neg t = scale Rat.minus_one t

let sub a b = add a (neg b)

let add_const c t = { t with constant = Rat.add c t.constant }

let coeff v t =
  match Var.Map.find_opt v t.terms with Some c -> c | None -> Rat.zero

let constant t = t.constant

let vars t = Var.Map.bindings t.terms |> List.map fst

let mem v t = Var.Map.mem v t.terms

let is_const t = Var.Map.is_empty t.terms

let subst v e t =
  let c = coeff v t in
  if Rat.equal c Rat.zero then t
  else
    let without = { t with terms = Var.Map.remove v t.terms } in
    add without (scale c e)

let map_vars f t =
  let terms =
    Var.Map.fold
      (fun v c acc ->
        let v' = f v in
        Var.Map.update v'
          (function
            | None -> norm_coeff c
            | Some c0 -> norm_coeff (Rat.add c0 c))
          acc)
      t.terms Var.Map.empty
  in
  { t with terms }

let eval valuation t =
  Var.Map.fold
    (fun v c acc -> Rat.add acc (Rat.mul c (valuation v)))
    t.terms t.constant

let partial_eval valuation t =
  Var.Map.fold
    (fun v c acc ->
      match valuation v with
      | Some r -> add_const (Rat.mul c r) acc
      | None -> add acc (monom c v))
    t.terms (const t.constant)

let fold f t init = Var.Map.fold f t.terms init

let denominator_lcm t =
  Var.Map.fold
    (fun _ c acc -> Rat.lcm acc (Rat.den c))
    t.terms (Rat.den t.constant)

let equal a b =
  Rat.equal a.constant b.constant && Var.Map.equal Rat.equal a.terms b.terms

let compare a b =
  let c = Rat.compare a.constant b.constant in
  if c <> 0 then c else Var.Map.compare Rat.compare a.terms b.terms

let pp ppf t =
  let first = ref true in
  let sep sign =
    if !first then begin
      first := false;
      if sign < 0 then Format.pp_print_string ppf "-"
    end
    else Format.pp_print_string ppf (if sign < 0 then " - " else " + ")
  in
  Var.Map.iter
    (fun v c ->
      sep (Rat.sign c);
      let a = Rat.abs c in
      if Rat.equal a Rat.one then Var.pp ppf v
      else Format.fprintf ppf "%a*%a" Rat.pp a Var.pp v)
    t.terms;
  if not (Rat.equal t.constant Rat.zero) || !first then begin
    sep (Rat.sign t.constant);
    Rat.pp ppf (Rat.abs t.constant)
  end

let to_string t = Format.asprintf "%a" pp t
