open Numeric

(* Hash-consed: [id] is the process-unique intern id of the (terms,
   constant) content, [hash] its structural hash.  Every constructor routes
   through [mk]/[intern], so two structurally equal expressions are always
   the same value and [equal] is one integer comparison.  [compare] stays
   structural (ids are allocation-order dependent) so that every canonical
   ordering downstream is independent of scheduling. *)
type t = { id : int; hash : int; terms : Rat.t Var.Map.t; constant : Rat.t }

let content_hash terms constant =
  let rat acc r = Intern.mix (Intern.mix acc (Rat.num r)) (Rat.den r) in
  Var.Map.fold (fun v c acc -> rat (Intern.mix acc (Var.id v)) c) terms
    (rat 0x811c9dc5 constant)

module I = Intern.Make (struct
  type nonrec t = t

  let equal a b =
    Rat.equal a.constant b.constant && Var.Map.equal Rat.equal a.terms b.terms

  let hash t = t.hash
  let with_id t id = { t with id }
  let name = "expr"
end)

let mk terms constant =
  I.intern { id = -1; hash = content_hash terms constant; terms; constant }

let zero = mk Var.Map.empty Rat.zero

let const c = mk Var.Map.empty c

let of_int n = const (Rat.of_int n)

let norm_coeff c = if Rat.equal c Rat.zero then None else Some c

let monom c v =
  match norm_coeff c with
  | None -> zero
  | Some c -> mk (Var.Map.singleton v c) Rat.zero

let var v = monom Rat.one v

let add a b =
  let terms =
    Var.Map.union (fun _ ca cb -> norm_coeff (Rat.add ca cb)) a.terms b.terms
  in
  mk terms (Rat.add a.constant b.constant)

let scale k t =
  if Rat.equal k Rat.zero then zero
  else mk (Var.Map.map (Rat.mul k) t.terms) (Rat.mul k t.constant)

let neg t = scale Rat.minus_one t

let sub a b = add a (neg b)

let add_const c t = mk t.terms (Rat.add c t.constant)

let coeff v t =
  match Var.Map.find_opt v t.terms with Some c -> c | None -> Rat.zero

let constant t = t.constant

let vars t = Var.Map.bindings t.terms |> List.map fst

let mem v t = Var.Map.mem v t.terms

let is_const t = Var.Map.is_empty t.terms

let subst v e t =
  let c = coeff v t in
  if Rat.equal c Rat.zero then t
  else
    let without = mk (Var.Map.remove v t.terms) t.constant in
    add without (scale c e)

let map_vars f t =
  let terms =
    Var.Map.fold
      (fun v c acc ->
        let v' = f v in
        Var.Map.update v'
          (function
            | None -> norm_coeff c
            | Some c0 -> norm_coeff (Rat.add c0 c))
          acc)
      t.terms Var.Map.empty
  in
  mk terms t.constant

let eval valuation t =
  Var.Map.fold
    (fun v c acc -> Rat.add acc (Rat.mul c (valuation v)))
    t.terms t.constant

let partial_eval valuation t =
  Var.Map.fold
    (fun v c acc ->
      match valuation v with
      | Some r -> add_const (Rat.mul c r) acc
      | None -> add acc (monom c v))
    t.terms (const t.constant)

let fold f t init = Var.Map.fold f t.terms init

let denominator_lcm t =
  Var.Map.fold
    (fun _ c acc -> Rat.lcm acc (Rat.den c))
    t.terms (Rat.den t.constant)

let id t = t.id
let hash t = t.hash

let equal a b = a.id = b.id

let compare a b =
  if a.id = b.id then 0
  else
    let c = Rat.compare a.constant b.constant in
    if c <> 0 then c else Var.Map.compare Rat.compare a.terms b.terms

let pp ppf t =
  let first = ref true in
  let sep sign =
    if !first then begin
      first := false;
      if sign < 0 then Format.pp_print_string ppf "-"
    end
    else Format.pp_print_string ppf (if sign < 0 then " - " else " + ")
  in
  Var.Map.iter
    (fun v c ->
      sep (Rat.sign c);
      let a = Rat.abs c in
      if Rat.equal a Rat.one then Var.pp ppf v
      else Format.fprintf ppf "%a*%a" Rat.pp a Var.pp v)
    t.terms;
  if not (Rat.equal t.constant Rat.zero) || !first then begin
    sep (Rat.sign t.constant);
    Rat.pp ppf (Rat.abs t.constant)
  end

let to_string t = Format.asprintf "%a" pp t
