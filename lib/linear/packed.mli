(** Packed integer-row solver backing the fast query paths of {!System}.

    Constraints whose (already Constr-normalized) coefficients are machine
    integers pack into flat int arrays; Fourier-Motzkin elimination over the
    packed rows uses pure integer arithmetic with Imbert-style parent
    counting, dominance pruning, and optional GCD tightening.

    Any arithmetic overflow raises {!Numeric.Rat.Overflow}; callers fall
    back to the exact rational reference path. *)

exception Not_packable
(** A coefficient is not an integer (cannot happen for constraints built by
    [Constr.make], kept as a guard) or does not fit the packed range. *)

type row
type t = row array

val pack : Constr.t list -> t
(** @raise Not_packable if any coefficient is unsuitable. *)

val pack_constr : Constr.t -> row

(** {2 Row introspection}

    Read-only access for the learned solver contexts ({!Context}), which
    key their direction tables on a row's normalized linear part.  The
    returned arrays are the row's own — callers must not mutate them. *)

val row_ids : row -> int array
(** Strictly increasing variable ids. *)

val row_coeffs : row -> int array
(** Non-zero integer coefficients, parallel to [row_ids]. *)

val row_const : row -> int
val row_is_eq : row -> bool

val is_const : row -> bool
(** No variables: the row is a constant fact. *)

val const_infeasible : row -> bool
(** A constant row that is unsatisfiable on its own. *)

(** {2 Interval bounding boxes} *)

type box
(** Per-variable constant bounds extracted from the single-variable rows of
    a system: an over-approximation of the system's solution set. *)

val box_of : t -> box option
(** [None] when the constant and single-variable rows alone are already
    contradictory, i.e. the system is rationally infeasible. *)

val boxes_disjoint : box -> box -> bool
(** [true] means the two boxes — hence the two systems — share no rational
    point.  [false] is inconclusive. *)

val box_implies : box -> t -> bool
(** [box_implies box c]: the integer negation of every row of [c] is
    unsatisfiable over [box].  When [box] was built from a system [t], a
    [true] answer means [System.implies t c] holds.  [false] is
    inconclusive. *)

(** {2 Feasibility} *)

type outcome =
  | Feasible  (** exact in both modes *)
  | Infeasible  (** exact: no rational solution *)
  | Infeasible_tightened
      (** refuted only after strict GCD tightening — rationally the system
          may still be feasible; re-run with [~tighten:false] for the exact
          answer *)

val feasible : ?prio:(int -> float) -> tighten:bool -> t -> outcome
(** Fourier-Motzkin feasibility over the packed rows.  With
    [~tighten:false] the answer is exactly rational feasibility; with
    [~tighten:true] GCD tightening shortens eliminations but a refutation
    that involved strict tightening is reported as [Infeasible_tightened].

    [?prio] supplies a per-variable activity score: among variables whose
    elimination cost is within 2x of the cheapest, the most active one is
    eliminated first (learned contexts seed this with conflict activity).
    Any elimination order is exact, so [prio] never changes the outcome —
    overridden picks are counted in [Solver_stats.ctx_activity_reorders].
    @raise Numeric.Rat.Overflow on integer overflow. *)
