type kind =
  | Subscript of int
  | Ivar
  | Sym

type t = { id : int; name : string; kind : kind }

let counter = ref 0

let fresh ~name kind =
  incr counter;
  { id = !counter; name; kind }

(* Canonical subscript variables: dimension k of every region description is
   the same variable, so regions over the same array compose directly.
   Their ids are negative to stay disjoint from [fresh] ids. *)
let subscript_table : (int, t) Hashtbl.t = Hashtbl.create 16

let subscript k =
  match Hashtbl.find_opt subscript_table k with
  | Some v -> v
  | None ->
    let v = { id = -(k + 1); name = Printf.sprintf "d%d" k; kind = Subscript k } in
    Hashtbl.add subscript_table k v;
    v

let id t = t.id
let name t = t.name
let kind t = t.kind

let is_subscript t = match t.kind with Subscript _ -> true | Ivar | Sym -> false
let is_ivar t = match t.kind with Ivar -> true | Subscript _ | Sym -> false
let is_sym t = match t.kind with Sym -> true | Subscript _ | Ivar -> false

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id

let pp ppf t = Format.pp_print_string ppf t.name

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
