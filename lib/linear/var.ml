type kind =
  | Subscript of int
  | Ivar
  | Sym

type t = { id : int; name : string; kind : kind }

(* The id counter is atomic so that [fresh] is safe to call from several
   domains at once (the engine fans per-PU collection out in parallel). *)
let counter = Atomic.make 0

let fresh ~name kind = { id = Atomic.fetch_and_add counter 1 + 1; name; kind }

let current () = Atomic.get counter

let rec advance_past n =
  let cur = Atomic.get counter in
  if cur >= n then ()
  else if not (Atomic.compare_and_set counter cur n) then advance_past n

(* Canonical subscript variables: dimension k of every region description is
   the same variable, so regions over the same array compose directly.
   Their ids are negative to stay disjoint from [fresh] ids.  The table is
   only a memoization of a pure construction, but it is still guarded so
   concurrent first uses cannot corrupt the bucket lists. *)
let subscript_table : (int, t) Hashtbl.t = Hashtbl.create 16
let subscript_mutex = Mutex.create ()

let subscript k =
  Mutex.lock subscript_mutex;
  let v =
    match Hashtbl.find_opt subscript_table k with
    | Some v -> v
    | None ->
      let v =
        { id = -(k + 1); name = Printf.sprintf "d%d" k; kind = Subscript k }
      in
      Hashtbl.add subscript_table k v;
      v
  in
  Mutex.unlock subscript_mutex;
  v

let id t = t.id
let name t = t.name
let kind t = t.kind

let is_subscript t = match t.kind with Subscript _ -> true | Ivar | Sym -> false
let is_ivar t = match t.kind with Ivar -> true | Subscript _ | Sym -> false
let is_sym t = match t.kind with Sym -> true | Subscript _ | Ivar -> false

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id

let pp ppf t = Format.pp_print_string ppf t.name

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
