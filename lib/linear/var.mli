(** Variables of the linear constraint language.

    The region analysis distinguishes the roles the paper's ARA module gives
    to bound terms (CONST / IVAR / LINDEX / SUBSCR):

    - {!Subscript}[ k] — the canonical variable standing for dimension [k] of
      the array region being described (the paper's SUBSCR / LINDEX);
    - {!Ivar} — a loop induction variable, eliminated by projection;
    - {!Sym} — a symbolic program value (formal scalar, COMMON scalar, ...)
      that survives projection and renders symbolically. *)

type kind =
  | Subscript of int  (** region dimension, 0-based *)
  | Ivar              (** loop induction variable *)
  | Sym               (** symbolic program constant *)

type t = private { id : int; name : string; kind : kind }

val fresh : name:string -> kind -> t
(** Allocates a globally unique variable.  Safe to call concurrently from
    several domains. *)

val current : unit -> int
(** The last id handed out by {!fresh} — a snapshot the engine's on-disk
    summary cache records so a later process can {!advance_past} it. *)

val advance_past : int -> unit
(** Ensure future {!fresh} ids are strictly greater than [n]; used when
    deserialized structures carry variables minted by another process. *)

val subscript : int -> t
(** [subscript k] is the canonical (interned) variable for dimension [k];
    repeated calls return the identical variable. *)

val id : t -> int
val name : t -> string
val kind : t -> kind

val is_subscript : t -> bool
val is_ivar : t -> bool
val is_sym : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
