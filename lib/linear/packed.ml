open Numeric

(* Packed integer rows for the answer-only solver paths in {!System}.

   Constr normalization already scales every constraint to coprime integer
   coefficients, so a constraint [sum c_i v_i + k (<=|=) 0] packs into two
   flat int arrays indexed in ascending variable-id order.  Fourier-Motzkin
   over these rows is pure integer arithmetic: no [Rat.t] allocation, no
   [Var.Map] traversal per coefficient.

   Exactness contract: with [~tighten:false], [feasible] decides rational
   feasibility exactly (same answer as the reference eliminator in
   {!System}).  With [~tighten:true], GCD tightening may additionally refute
   systems that are rationally feasible but integer-infeasible; such a
   refutation is reported as [Infeasible_tightened] so the caller can re-run
   exactly.  A [Feasible] answer is exact in both modes (tightening only
   shrinks the solution set). *)

exception Not_packable

type row = {
  ids : int array;  (* strictly increasing variable ids *)
  cs : int array;  (* non-zero integer coefficients, parallel to [ids] *)
  k : int;  (* constant term *)
  eq : bool;  (* [true] for equalities, [false] for [<= 0] *)
  anc : int;  (* bitset of original ancestor rows (Imbert counting);
                 0 means "untracked" and disables pruning *)
}

type t = row array

(* Overflow-checked integer primitives; any overflow aborts the packed
   attempt and the caller falls back to the exact rational path. *)

let cmul a b =
  if a = 0 || b = 0 then 0
  else begin
    let p = a * b in
    if p / b <> a then raise Rat.Overflow;
    p
  end

let cadd a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Rat.Overflow;
  s

let cneg a = if a = min_int then raise Rat.Overflow else -a

(* ---------- packing ---------- *)

let pack_constr c =
  let e = Constr.expr c in
  let terms = List.rev (Expr.fold (fun v r acc -> (Var.id v, r) :: acc) e []) in
  let n = List.length terms in
  let ids = Array.make n 0 and cs = Array.make n 0 in
  List.iteri
    (fun i (id, r) ->
      if not (Rat.is_integer r) || Rat.num r = min_int then
        raise Not_packable;
      ids.(i) <- id;
      cs.(i) <- Rat.to_int r)
    terms;
  let kc = Expr.constant e in
  if not (Rat.is_integer kc) || Rat.num kc = min_int then raise Not_packable;
  { ids; cs; k = Rat.to_int kc; eq = Constr.op c = Constr.Eq; anc = 0 }

let pack cs = Array.of_list (List.map pack_constr cs)

(* ---------- row algebra ---------- *)

let is_const r = Array.length r.ids = 0

let const_infeasible r =
  is_const r && (if r.eq then r.k <> 0 else r.k > 0)

let coeff_of v r =
  (* binary search over the sorted id array *)
  let lo = ref 0 and hi = ref (Array.length r.ids - 1) in
  let found = ref 0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let id = r.ids.(mid) in
    if id = v then begin
      found := r.cs.(mid);
      lo := !hi + 1
    end
    else if id < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* [combine m1 r1 m2 r2] is the row [m1*r1 + m2*r2] with zero coefficients
   squeezed out (merge of two sorted term arrays). *)
let combine m1 r1 m2 r2 ~eq ~anc =
  let n1 = Array.length r1.ids and n2 = Array.length r2.ids in
  let ids = Array.make (n1 + n2) 0 and cs = Array.make (n1 + n2) 0 in
  let i = ref 0 and j = ref 0 and out = ref 0 in
  let push id c =
    if c <> 0 then begin
      ids.(!out) <- id;
      cs.(!out) <- c;
      incr out
    end
  in
  while !i < n1 && !j < n2 do
    let id1 = r1.ids.(!i) and id2 = r2.ids.(!j) in
    if id1 = id2 then begin
      push id1 (cadd (cmul m1 r1.cs.(!i)) (cmul m2 r2.cs.(!j)));
      incr i;
      incr j
    end
    else if id1 < id2 then begin
      push id1 (cmul m1 r1.cs.(!i));
      incr i
    end
    else begin
      push id2 (cmul m2 r2.cs.(!j));
      incr j
    end
  done;
  while !i < n1 do
    push r1.ids.(!i) (cmul m1 r1.cs.(!i));
    incr i
  done;
  while !j < n2 do
    push r2.ids.(!j) (cmul m2 r2.cs.(!j));
    incr j
  done;
  {
    ids = Array.sub ids 0 !out;
    cs = Array.sub cs 0 !out;
    k = cadd (cmul m1 r1.k) (cmul m2 r2.k);
    eq;
    anc;
  }

(* Exact normalization: divide the whole row (coefficients and constant) by
   their common gcd.  Always preserves the rational solution set. *)
let normalize_exact r =
  if is_const r then r
  else begin
    let g = ref (abs r.k) in
    Array.iter (fun c -> g := Rat.gcd !g c) r.cs;
    let g = !g in
    if g <= 1 then r
    else { r with cs = Array.map (fun c -> c / g) r.cs; k = r.k / g }
  end

(* GCD tightening of an integer inequality: divide the variable coefficients
   by their gcd [g] and round the constant up ([c.v + k <= 0] becomes
   [(c/g).v + ceil(k/g) <= 0]).  Exact on integer points; strictly stronger
   on rational points when [g] does not divide [k], in which case [strict]
   is flagged so a refutation can be re-checked exactly. *)
let tighten_row strict r =
  if r.eq || is_const r then r
  else begin
    let g = ref 0 in
    Array.iter (fun c -> g := Rat.gcd !g c) r.cs;
    let g = !g in
    if g <= 1 then r
    else begin
      let q = r.k / g and m = r.k mod g in
      let k' = if m > 0 then q + 1 else q in
      if m <> 0 then strict := true;
      { r with cs = Array.map (fun c -> c / g) r.cs; k = k' }
    end
  end

(* ---------- interval bounding boxes ---------- *)

type box = (int, Rat.t option * Rat.t option) Hashtbl.t

let box_of rows =
  try
    let tbl : box = Hashtbl.create 16 in
    Array.iter
      (fun r ->
        match Array.length r.ids with
        | 0 -> if const_infeasible r then raise Exit
        | 1 ->
          let id = r.ids.(0) and c = r.cs.(0) in
          let b = Rat.make (cneg r.k) c in
          let lo, hi =
            match Hashtbl.find_opt tbl id with
            | Some b -> b
            | None -> (None, None)
          in
          let max_lo lo =
            match lo with
            | None -> Some b
            | Some l -> Some (Rat.max l b)
          and min_hi hi =
            match hi with
            | None -> Some b
            | Some h -> Some (Rat.min h b)
          in
          let bnds =
            if r.eq then (max_lo lo, min_hi hi)
            else if c > 0 then (lo, min_hi hi)
            else (max_lo lo, hi)
          in
          Hashtbl.replace tbl id bnds
        | _ -> ())
      rows;
    Hashtbl.iter
      (fun _ bnds ->
        match bnds with
        | Some l, Some h -> if Rat.compare l h > 0 then raise Exit
        | _ -> ())
      tbl;
    Some tbl
  with Exit -> None

let boxes_disjoint a b =
  let lt h l =
    match (h, l) with
    | Some h, Some l -> Rat.compare h l < 0
    | _ -> false
  in
  Hashtbl.fold
    (fun id (lo, hi) acc ->
      acc
      ||
      match Hashtbl.find_opt b id with
      | None -> false
      | Some (lo', hi') -> lt hi lo' || lt hi' lo)
    a false

(* Finite supremum of [cs . v + k] over the box, [None] if unbounded. *)
let sup_over box ids cs k =
  let acc = ref (Rat.of_int k) in
  try
    Array.iteri
      (fun i c ->
        let lo, hi =
          match Hashtbl.find_opt box ids.(i) with
          | Some b -> b
          | None -> (None, None)
        in
        match if c > 0 then hi else lo with
        | None -> raise Exit
        | Some b -> acc := Rat.add !acc (Rat.mul (Rat.of_int c) b))
      cs;
    Some !acc
  with Exit -> None

(* [box_implies box rows]: the integer negation of each row is unsatisfiable
   over the box.  Since the box over-approximates the system the box was
   built from, a [true] answer means [System.implies] would answer [true]
   via its negation-feasibility check. *)
let box_implies box rows =
  let lt1 = function
    | Some s -> Rat.compare s Rat.one < 0
    | None -> false
  in
  Array.for_all
    (fun r ->
      let sup = lt1 (sup_over box r.ids r.cs r.k) in
      if not r.eq then sup
      else
        sup
        && lt1 (sup_over box r.ids (Array.map cneg r.cs) (cneg r.k)))
    rows

(* ---------- Fourier-Motzkin ---------- *)

exception Infeasible_exc

type outcome = Feasible | Infeasible | Infeasible_tightened

(* Split [rows] into constant rows (checked, dropped) and live rows. *)
let check_consts rows =
  List.filter
    (fun r ->
      if is_const r then begin
        if const_infeasible r then raise Infeasible_exc;
        false
      end
      else true)
    rows

(* Equality-substitution phase: repeatedly pick an equality with variables
   and use it to cancel one variable (smallest |coefficient|, then smallest
   id) from every other row mentioning it.  Exact over the rationals. *)
let rec eq_phase rows =
  let rec find_eq acc = function
    | [] -> None
    | r :: rest when r.eq && not (is_const r) ->
      Some (r, List.rev_append acc rest)
    | r :: rest -> find_eq (r :: acc) rest
  in
  match find_eq [] rows with
  | None -> rows
  | Some (e, rest) ->
    let pivot = ref 0 in
    Array.iteri
      (fun i c -> if abs c < abs e.cs.(!pivot) then pivot := i)
      e.cs;
    let v = e.ids.(!pivot) and a = e.cs.(!pivot) in
    if a = min_int then raise Rat.Overflow;
    let subst r =
      let c = coeff_of v r in
      if c = 0 then r
      else begin
        let g = Rat.gcd a c in
        let m1 = abs a / g in
        let m2 = cneg (if a > 0 then c / g else cneg (c / g)) in
        normalize_exact (combine m1 r m2 e ~eq:r.eq ~anc:0)
      end
    in
    eq_phase (check_consts (List.map subst rest))

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  go n 0

(* Inequality phase: pure Fourier-Motzkin with exact row normalization,
   dominance pruning, and Imbert's redundancy bound.  [step] is the 1-based
   index of the elimination being performed; a derived row whose ancestor
   set (union of the two parents' — parent-count sums would overcount
   shared history and prune sound rows) has more than [step + 1] members is
   redundant and dropped.  No tightening happens here: Imbert's theorem is
   about exact conic combinations, so tightened rows would void it. *)
let rec ineq_phase ?prio step rows =
  match rows with
  | [] -> ()
  | _ ->
    (* pick the variable minimizing #lowers * #uppers (ties: smallest id) *)
    let occ : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun r ->
        Array.iteri
          (fun i c ->
            let nl, nu =
              match Hashtbl.find_opt occ r.ids.(i) with
              | Some p -> p
              | None ->
                let p = (ref 0, ref 0) in
                Hashtbl.add occ r.ids.(i) p;
                p
            in
            if c > 0 then incr nu else incr nl)
          r.cs)
      rows;
    let best = ref None in
    Hashtbl.iter
      (fun id (nl, nu) ->
        let cost = !nl * !nu in
        match !best with
        | None -> best := Some (id, cost)
        | Some (bid, bcost) ->
          if cost < bcost || (cost = bcost && id < bid) then
            best := Some (id, cost))
      occ;
    let v =
      match !best with
      | None -> assert false
      | Some (bid, bcost) -> (
        match prio with
        | None -> bid
        | Some act ->
          (* activity override: among the variables whose elimination cost
             is within 2x of the cheapest, prefer the most active one
             (ties: smallest id).  Any order is exact for FM, so this only
             redistributes work, never changes the answer. *)
          let limit = 2 * bcost in
          let chosen = ref (bid, act bid) in
          Hashtbl.iter
            (fun id (nl, nu) ->
              let cost = !nl * !nu in
              if cost <= limit then begin
                let a = act id in
                let cid, ca = !chosen in
                if a > ca || (a = ca && id < cid) then chosen := (id, a)
              end)
            occ;
          let cid, _ = !chosen in
          if cid <> bid then Solver_stats.ctx_activity_reorder ();
          cid)
    in
    let lows, ups, free =
      List.fold_left
        (fun (lows, ups, free) r ->
          let c = coeff_of v r in
          if c < 0 then ((r, c) :: lows, ups, free)
          else if c > 0 then (lows, (r, c) :: ups, free)
          else (lows, ups, r :: free))
        ([], [], []) rows
    in
    let built = ref 0 and pruned = ref 0 in
    (* dominance table: same coefficient vector -> keep the tightest
       constant (largest k).  The merged row must carry the INTERSECTION of
       the two ancestor sets: each pruned row B has an implying survivor A
       with anc(A) a subset of B's true history, so a descendant of A is
       never Imbert-pruned in a situation where the corresponding descendant
       of B would have been kept.  (Keeping the larger — or even just A's
       own — ancestor set here is unsound: A's descendants could be pruned
       while the pruned-B descendants that Kohler's criterion relies on were
       never built, losing constraints and reporting false Feasible.)
       Under-approximating ancestors only ever disables pruning, which is
       conservative; anc = 0 (empty) degrades to "never pruned". *)
    let dom : (int array * int array, row) Hashtbl.t = Hashtbl.create 64 in
    let keep r =
      let key = (r.ids, r.cs) in
      match Hashtbl.find_opt dom key with
      | None -> Hashtbl.replace dom key r
      | Some r' ->
        incr pruned;
        let merged =
          { (if r.k > r'.k then r else r') with anc = r.anc land r'.anc }
        in
        Hashtbl.replace dom key merged
    in
    List.iter keep free;
    List.iter
      (fun (lo, cl) ->
        List.iter
          (fun (up, cu) ->
            incr built;
            let anc = lo.anc lor up.anc in
            if anc <> 0 && popcount anc > step + 1 then incr pruned
            else begin
              let ncl = cneg cl in
              let g = Rat.gcd cu ncl in
              let r = combine (cu / g) lo (ncl / g) up ~eq:false ~anc in
              if is_const r then begin
                if const_infeasible r then raise Infeasible_exc
              end
              else keep (normalize_exact r)
            end)
          ups)
        lows;
    Solver_stats.fm_rows_built !built;
    Solver_stats.fm_rows_pruned !pruned;
    let next = Hashtbl.fold (fun _ r acc -> r :: acc) dom [] in
    ineq_phase ?prio (step + 1) next

let feasible ?prio ~tighten rows =
  Solver_stats.fm_run ();
  let strict = ref false in
  try
    let rows = check_consts (Array.to_list rows) in
    let rows = eq_phase rows in
    (* GCD-tighten the starting inequalities only: interleaving tightening
       with the elimination would break the conic-combination premise of
       both Imbert's bound and the exactness argument for [Feasible]. *)
    let rows =
      if tighten then check_consts (List.map (tighten_row strict) rows)
      else rows
    in
    (* Re-number ancestors after the equality phase so Imbert's bound
       applies to the pure-inequality run that starts here; with more than
       62 rows the bitset would overflow, so pruning is disabled (anc 0). *)
    let n = List.length rows in
    let rows =
      if n <= 62 then List.mapi (fun i r -> { r with anc = 1 lsl i }) rows
      else rows
    in
    ineq_phase ?prio 1 rows;
    Feasible
  with Infeasible_exc ->
    if !strict then Infeasible_tightened else Infeasible

(* ---------- row introspection (learned contexts) ---------- *)

let row_ids r = r.ids
let row_coeffs r = r.cs
let row_const r = r.k
let row_is_eq r = r.eq
