(** Persistent per-system solver contexts: the conflict-learning layer
    under {!System}'s learned core.

    One context per interned system id, shared jobs-invariantly by every
    worker domain (like the global implies memo).  A context accumulates
    {e derived facts} across queries on the same system — learned
    direction thresholds (Farkas-style infeasibility certificates and
    feasibility witnesses, each reusable by a single rational comparison),
    exact projected variable bounds and projections, and MiniSat-style
    variable activity used to order Fourier-Motzkin eliminations.

    Every stored fact is exact, so contexts are pure caches: flushing them
    ({!clear}, called from [System.clear_cache]) is always sound and the
    answers produced through a context are byte-identical to the reference
    eliminator's. *)

open Numeric

type t

val find : int -> t
(** [find sys_id] returns the (possibly fresh) context for an interned
    system id.  Creation is counted once per id in
    [Solver_stats.ctx_contexts]. *)

val sys : t -> int
(** The system id the context was created for. *)

val clear : unit -> unit
(** Drop every context (run boundaries; same discipline as the implies
    memo — only call while no other domain is querying). *)

val count : unit -> int
(** Number of live contexts (tests). *)

(** {2 Cached interval box} *)

val box : t -> build:(unit -> Packed.box option) -> Packed.box option
(** The system's interval box, built at most once per context ([build] runs
    under the context lock on first use). *)

(** {2 Direction thresholds}

    A direction key is the gcd-normalized linear part [(ids, coeffs)] of a
    packed inequality row; the query value [q] is the row's (negated,
    gcd-scaled) constant, i.e. the question "is [sys /\ coeffs.x <= q]
    feasible?".  Feasibility is monotone in [q] with a single rational
    threshold, so one learned bound per side answers every dominated
    query. *)

val check_dir : t -> int array * int array -> Rat.t -> bool option
(** [Some true] — a recorded feasible witness dominates [q] (counted as a
    bound hit); [Some false] — a recorded infeasibility certificate covers
    [q] (counted as a cut hit); [None] — unknown, caller must eliminate
    and {!learn_dir} the outcome. *)

val learn_dir : t -> int array * int array -> Rat.t -> bool -> unit
(** Record the exact outcome of an elimination for this direction. *)

(** {2 Exact projection memos} *)

val find_bounds : t -> int -> (Rat.t option * Rat.t option) option
val store_bounds : t -> int -> Rat.t option * Rat.t option -> unit
(** Memoized [System.bounds] results, keyed by [Var.id]. *)

val find_proj : t -> int list -> Constr.t list option
val store_proj : t -> int list -> Constr.t list -> unit
(** Memoized [System.project_onto] results, keyed by the sorted kept
    variable ids; the value is the canonical (normalized) constraint
    list. *)

(** {2 Variable activity} *)

val ensure_activity : t -> (unit -> (int * int) list) -> unit
(** Seed the activity table once with occurrence counts
    [(var id, count)]. *)

val decay : t -> unit
(** Per-query decay (implemented by growing the bump increment). *)

val bump_vars : t -> int array -> unit
(** Conflict: bump the activity of the given variable ids. *)

val prio : t -> int -> float
(** A lock-free snapshot of the activity table, suitable as the [?prio]
    argument of {!Packed.feasible}. *)
