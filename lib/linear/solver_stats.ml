(* Thin facade over the {!Obs.Metrics} registry: every counter here is a
   registered "solver.*" metric, so the same numbers show up in
   [uhc --metrics] dumps and in the [Engine.Stats] record without being
   kept twice.  Totals are exact under parallelism (wall-clock sums are
   per-query deltas, so concurrent queries may sum to more than elapsed
   time — they measure solver work, not latency).

   [quiet] suppresses counting on the calling domain: System uses it when
   it re-computes a query another domain already computed (per-domain memo
   caches), and for every elimination the learned contexts trigger (whether
   a context answers by a learned cut or pays an elimination depends on
   query arrival order), which keeps every counter outside the ctx_* group
   scheduling-independent — each distinct system is counted exactly once
   however the engine's pool interleaves the work.

   The ctx_* counters and [implies_l1_hits] are throughput telemetry for
   the learned core: they are bumped unconditionally (including under
   [quiet]) because the work they count only exists on scheduling-dependent
   paths, and they are deliberately excluded from [pp_deterministic]. *)

type t = {
  queries : int;  (* System.feasible entry points answered *)
  cache_hits : int;
  cache_misses : int;
  box_refutations : int;  (* disjoint/feasible decided by interval boxes *)
  syntactic_hits : int;  (* implies decided without any elimination *)
  fm_runs : int;  (* packed Fourier-Motzkin eliminations performed *)
  fm_rows_built : int;  (* rows produced by FM combination *)
  fm_rows_pruned : int;  (* rows dropped by Imbert counting / dominance *)
  tighten_fallbacks : int;  (* GCD tightening refuted; exact rerun needed *)
  overflow_fallbacks : int;  (* packed arithmetic overflowed; used reference *)
  reference_runs : int;  (* queries answered by the reference path *)
  small_runs : int;  (* tiny systems routed straight to the reference
                        eliminator (packed setup costs more than it saves) *)
  wall_fast_ns : int;  (* time inside fast-path feasible queries *)
  wall_reference_ns : int;  (* time inside reference-path feasible queries *)
  implies_queries : int;  (* System.implies entry points answered *)
  implies_memo_hits : int;  (* derived: queries - fresh computes *)
  implies_wall_ns : int;  (* time inside computed implies queries *)
  implies_l1_hits : int;  (* answered by a per-domain L1 table (untimed) *)
  ctx_contexts : int;  (* learned contexts created *)
  ctx_cut_hits : int;  (* queries refuted by a learned Farkas cut *)
  ctx_bound_hits : int;  (* queries answered by a learned bound/witness *)
  ctx_proj_hits : int;  (* projections served from a context *)
  ctx_elims : int;  (* eliminations paid inside contexts *)
  ctx_activity_reorders : int;  (* FM picks overridden by activity order *)
}

let c_queries = Obs.Metrics.counter "solver.queries"
let c_cache_hits = Obs.Metrics.counter "solver.cache.hits"
let c_cache_misses = Obs.Metrics.counter "solver.cache.misses"
let c_box_refutations = Obs.Metrics.counter "solver.box_refutations"
let c_syntactic_hits = Obs.Metrics.counter "solver.syntactic_hits"
let c_fm_runs = Obs.Metrics.counter "solver.fm.runs"
let c_fm_rows_built = Obs.Metrics.counter "solver.fm.rows_built"
let c_fm_rows_pruned = Obs.Metrics.counter "solver.fm.rows_pruned"
let c_tighten_fallbacks = Obs.Metrics.counter "solver.fallback.tighten"
let c_overflow_fallbacks = Obs.Metrics.counter "solver.fallback.overflow"
let c_reference_runs = Obs.Metrics.counter "solver.reference.runs"
let c_small_runs = Obs.Metrics.counter "solver.small_runs"
let c_wall_fast_ns = Obs.Metrics.counter "solver.wall.fast_ns"
let c_wall_reference_ns = Obs.Metrics.counter "solver.wall.reference_ns"
let c_implies_queries = Obs.Metrics.counter "solver.implies.queries"
let c_implies_fresh = Obs.Metrics.counter "solver.implies.fresh"
let c_implies_wall_ns = Obs.Metrics.counter "solver.implies.wall_ns"
let c_implies_l1_hits = Obs.Metrics.counter "solver.implies.l1_hits"
let c_ctx_contexts = Obs.Metrics.counter "solver.ctx.contexts"
let c_ctx_cut_hits = Obs.Metrics.counter "solver.ctx.cut_hits"
let c_ctx_bound_hits = Obs.Metrics.counter "solver.ctx.bound_hits"
let c_ctx_proj_hits = Obs.Metrics.counter "solver.ctx.proj_hits"
let c_ctx_elims = Obs.Metrics.counter "solver.ctx.elims"
let c_ctx_reorders = Obs.Metrics.counter "solver.ctx.activity_reorders"

let all =
  [
    c_queries; c_cache_hits; c_cache_misses; c_box_refutations;
    c_syntactic_hits; c_fm_runs; c_fm_rows_built; c_fm_rows_pruned;
    c_tighten_fallbacks; c_overflow_fallbacks; c_reference_runs;
    c_small_runs; c_wall_fast_ns; c_wall_reference_ns; c_implies_queries;
    c_implies_fresh; c_implies_wall_ns; c_implies_l1_hits; c_ctx_contexts;
    c_ctx_cut_hits; c_ctx_bound_hits; c_ctx_proj_hits; c_ctx_elims;
    c_ctx_reorders;
  ]

(* Per-domain suppression flag for [quiet]. *)
let quiet_key = Domain.DLS.new_key (fun () -> ref false)

let quiet f =
  let q = Domain.DLS.get quiet_key in
  let saved = !q in
  q := true;
  Fun.protect ~finally:(fun () -> q := saved) f

let counting () = not !(Domain.DLS.get quiet_key)

let bump c = if counting () then Obs.Metrics.Counter.incr c
let add c n = if counting () then Obs.Metrics.Counter.add c n

let query () = bump c_queries
let cache_hit () = bump c_cache_hits
let cache_miss () = bump c_cache_misses
let box_refutation () = bump c_box_refutations
let syntactic_hit () = bump c_syntactic_hits
let fm_run () = bump c_fm_runs
let fm_rows_built n = add c_fm_rows_built n
let fm_rows_pruned n = add c_fm_rows_pruned n
let tighten_fallback () = bump c_tighten_fallbacks
let overflow_fallback () = bump c_overflow_fallbacks
let reference_run () = bump c_reference_runs
let small_run () = bump c_small_runs
let add_fast_ns n = add c_wall_fast_ns n
let add_reference_ns n = add c_wall_reference_ns n
let implies_query () = bump c_implies_queries
let implies_fresh () = bump c_implies_fresh
let add_implies_ns n = add c_implies_wall_ns n

(* Learned-core telemetry: unconditional (see the module comment). *)
let implies_l1_hit () = Obs.Metrics.Counter.incr c_implies_l1_hits
let ctx_context () = Obs.Metrics.Counter.incr c_ctx_contexts
let ctx_cut_hit () = Obs.Metrics.Counter.incr c_ctx_cut_hits
let ctx_bound_hit () = Obs.Metrics.Counter.incr c_ctx_bound_hits
let ctx_proj_hit () = Obs.Metrics.Counter.incr c_ctx_proj_hits
let ctx_elim () = Obs.Metrics.Counter.incr c_ctx_elims
let ctx_activity_reorder () = Obs.Metrics.Counter.incr c_ctx_reorders

let get = Obs.Metrics.Counter.get

let snapshot () =
  let implies_queries = get c_implies_queries in
  let implies_fresh = get c_implies_fresh in
  {
    queries = get c_queries;
    cache_hits = get c_cache_hits;
    cache_misses = get c_cache_misses;
    box_refutations = get c_box_refutations;
    syntactic_hits = get c_syntactic_hits;
    fm_runs = get c_fm_runs;
    fm_rows_built = get c_fm_rows_built;
    fm_rows_pruned = get c_fm_rows_pruned;
    tighten_fallbacks = get c_tighten_fallbacks;
    overflow_fallbacks = get c_overflow_fallbacks;
    reference_runs = get c_reference_runs;
    small_runs = get c_small_runs;
    wall_fast_ns = get c_wall_fast_ns;
    wall_reference_ns = get c_wall_reference_ns;
    implies_queries;
    (* every entry point either computes freshly (counted in
       solver.implies.fresh) or was answered by a memo layer — global or
       per-domain L1 — so hits are derived and stay scheduling-independent
       even though which layer answered is not *)
    implies_memo_hits = implies_queries - implies_fresh;
    implies_wall_ns = get c_implies_wall_ns;
    implies_l1_hits = get c_implies_l1_hits;
    ctx_contexts = get c_ctx_contexts;
    ctx_cut_hits = get c_ctx_cut_hits;
    ctx_bound_hits = get c_ctx_bound_hits;
    ctx_proj_hits = get c_ctx_proj_hits;
    ctx_elims = get c_ctx_elims;
    ctx_activity_reorders = get c_ctx_reorders;
  }

let diff a b =
  {
    queries = a.queries - b.queries;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    box_refutations = a.box_refutations - b.box_refutations;
    syntactic_hits = a.syntactic_hits - b.syntactic_hits;
    fm_runs = a.fm_runs - b.fm_runs;
    fm_rows_built = a.fm_rows_built - b.fm_rows_built;
    fm_rows_pruned = a.fm_rows_pruned - b.fm_rows_pruned;
    tighten_fallbacks = a.tighten_fallbacks - b.tighten_fallbacks;
    overflow_fallbacks = a.overflow_fallbacks - b.overflow_fallbacks;
    reference_runs = a.reference_runs - b.reference_runs;
    small_runs = a.small_runs - b.small_runs;
    wall_fast_ns = a.wall_fast_ns - b.wall_fast_ns;
    wall_reference_ns = a.wall_reference_ns - b.wall_reference_ns;
    implies_queries = a.implies_queries - b.implies_queries;
    implies_memo_hits = a.implies_memo_hits - b.implies_memo_hits;
    implies_wall_ns = a.implies_wall_ns - b.implies_wall_ns;
    implies_l1_hits = a.implies_l1_hits - b.implies_l1_hits;
    ctx_contexts = a.ctx_contexts - b.ctx_contexts;
    ctx_cut_hits = a.ctx_cut_hits - b.ctx_cut_hits;
    ctx_bound_hits = a.ctx_bound_hits - b.ctx_bound_hits;
    ctx_proj_hits = a.ctx_proj_hits - b.ctx_proj_hits;
    ctx_elims = a.ctx_elims - b.ctx_elims;
    ctx_activity_reorders = a.ctx_activity_reorders - b.ctx_activity_reorders;
  }

let reset () = List.iter (fun c -> Obs.Metrics.Counter.set c 0) all

let absorb (t : t) =
  (* credit a snapshot diff computed elsewhere (a shard worker) to this
     process's registry; unconditional — worker-side counting already went
     through [quiet] gating over there *)
  let acc = Obs.Metrics.Counter.add in
  acc c_queries t.queries;
  acc c_cache_hits t.cache_hits;
  acc c_cache_misses t.cache_misses;
  acc c_box_refutations t.box_refutations;
  acc c_syntactic_hits t.syntactic_hits;
  acc c_fm_runs t.fm_runs;
  acc c_fm_rows_built t.fm_rows_built;
  acc c_fm_rows_pruned t.fm_rows_pruned;
  acc c_tighten_fallbacks t.tighten_fallbacks;
  acc c_overflow_fallbacks t.overflow_fallbacks;
  acc c_reference_runs t.reference_runs;
  acc c_small_runs t.small_runs;
  acc c_wall_fast_ns t.wall_fast_ns;
  acc c_wall_reference_ns t.wall_reference_ns;
  acc c_implies_queries t.implies_queries;
  (* the registry carries fresh computes; memo hits are re-derived by
     [snapshot] as queries - fresh *)
  acc c_implies_fresh (t.implies_queries - t.implies_memo_hits);
  acc c_implies_wall_ns t.implies_wall_ns;
  acc c_implies_l1_hits t.implies_l1_hits;
  acc c_ctx_contexts t.ctx_contexts;
  acc c_ctx_cut_hits t.ctx_cut_hits;
  acc c_ctx_bound_hits t.ctx_bound_hits;
  acc c_ctx_proj_hits t.ctx_proj_hits;
  acc c_ctx_elims t.ctx_elims;
  acc c_ctx_reorders t.ctx_activity_reorders

let to_alist t =
  [
    ("queries", t.queries);
    ("cache_hits", t.cache_hits);
    ("cache_misses", t.cache_misses);
    ("box_refutations", t.box_refutations);
    ("syntactic_hits", t.syntactic_hits);
    ("fm_runs", t.fm_runs);
    ("fm_rows_built", t.fm_rows_built);
    ("fm_rows_pruned", t.fm_rows_pruned);
    ("tighten_fallbacks", t.tighten_fallbacks);
    ("overflow_fallbacks", t.overflow_fallbacks);
    ("reference_runs", t.reference_runs);
    ("small_runs", t.small_runs);
    ("wall_fast_ns", t.wall_fast_ns);
    ("wall_reference_ns", t.wall_reference_ns);
    ("implies_queries", t.implies_queries);
    ("implies_memo_hits", t.implies_memo_hits);
    ("implies_wall_ns", t.implies_wall_ns);
    ("implies_l1_hits", t.implies_l1_hits);
    ("ctx_contexts", t.ctx_contexts);
    ("ctx_cut_hits", t.ctx_cut_hits);
    ("ctx_bound_hits", t.ctx_bound_hits);
    ("ctx_proj_hits", t.ctx_proj_hits);
    ("ctx_elims", t.ctx_elims);
    ("ctx_activity_reorders", t.ctx_activity_reorders);
  ]

let pp_counters ppf t =
  Format.fprintf ppf
    "solver: %d queries (%d cache hit / %d miss), %d box-refuted, %d \
     syntactic@\n"
    t.queries t.cache_hits t.cache_misses t.box_refutations t.syntactic_hits;
  Format.fprintf ppf
    "  FM: %d runs, %d rows built, %d pruned; fallbacks: %d tighten, %d \
     overflow, %d reference; small path: %d@\n"
    t.fm_runs t.fm_rows_built t.fm_rows_pruned t.tighten_fallbacks
    t.overflow_fallbacks t.reference_runs t.small_runs;
  Format.fprintf ppf "  implies: %d queries (%d memo hit)@\n" t.implies_queries
    t.implies_memo_hits

let pp ppf t =
  pp_counters ppf t;
  Format.fprintf ppf
    "  learned: %d contexts, %d cut hits, %d bound hits, %d proj hits, %d \
     elims, %d reorders, %d L1 hits@\n"
    t.ctx_contexts t.ctx_cut_hits t.ctx_bound_hits t.ctx_proj_hits t.ctx_elims
    t.ctx_activity_reorders t.implies_l1_hits;
  Format.fprintf ppf
    "  feasible wall: fast %.3f ms, reference %.3f ms; implies wall %.3f \
     ms@\n"
    (float_of_int t.wall_fast_ns /. 1e6)
    (float_of_int t.wall_reference_ns /. 1e6)
    (float_of_int t.implies_wall_ns /. 1e6)

let pp_deterministic ppf t =
  (* everything but the wall-clock sums and the learned-core telemetry
     line: those counters depend on timing/scheduling (which memo layer or
     learned fact answered a racing query), the rest are
     scheduling-independent (see [quiet]) *)
  pp_counters ppf t
