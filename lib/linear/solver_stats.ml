(* Thin facade over the {!Obs.Metrics} registry: every counter here is a
   registered "solver.*" metric, so the same numbers show up in
   [uhc --metrics] dumps and in the [Engine.Stats] record without being
   kept twice.  Totals are exact under parallelism (wall-clock sums are
   per-query deltas, so concurrent queries may sum to more than elapsed
   time — they measure solver work, not latency).

   [quiet] suppresses counting on the calling domain: System uses it when
   it re-computes a query another domain already computed (per-domain memo
   caches), which keeps every counter scheduling-independent — each
   distinct system is counted exactly once however the engine's pool
   interleaves the work. *)

type t = {
  queries : int;  (* System.feasible entry points answered *)
  cache_hits : int;
  cache_misses : int;
  box_refutations : int;  (* disjoint/feasible decided by interval boxes *)
  syntactic_hits : int;  (* implies decided without any elimination *)
  fm_runs : int;  (* packed Fourier-Motzkin eliminations performed *)
  fm_rows_built : int;  (* rows produced by FM combination *)
  fm_rows_pruned : int;  (* rows dropped by Imbert counting / dominance *)
  tighten_fallbacks : int;  (* GCD tightening refuted; exact rerun needed *)
  overflow_fallbacks : int;  (* packed arithmetic overflowed; used reference *)
  reference_runs : int;  (* queries answered by the reference path *)
  wall_fast_ns : int;  (* time inside fast-path feasible queries *)
  wall_reference_ns : int;  (* time inside reference-path feasible queries *)
  implies_queries : int;  (* System.implies entry points answered *)
  implies_memo_hits : int;  (* answered by the global (system, constraint) memo *)
  implies_wall_ns : int;  (* time inside implies queries, memo hits included *)
}

let c_queries = Obs.Metrics.counter "solver.queries"
let c_cache_hits = Obs.Metrics.counter "solver.cache.hits"
let c_cache_misses = Obs.Metrics.counter "solver.cache.misses"
let c_box_refutations = Obs.Metrics.counter "solver.box_refutations"
let c_syntactic_hits = Obs.Metrics.counter "solver.syntactic_hits"
let c_fm_runs = Obs.Metrics.counter "solver.fm.runs"
let c_fm_rows_built = Obs.Metrics.counter "solver.fm.rows_built"
let c_fm_rows_pruned = Obs.Metrics.counter "solver.fm.rows_pruned"
let c_tighten_fallbacks = Obs.Metrics.counter "solver.fallback.tighten"
let c_overflow_fallbacks = Obs.Metrics.counter "solver.fallback.overflow"
let c_reference_runs = Obs.Metrics.counter "solver.reference.runs"
let c_wall_fast_ns = Obs.Metrics.counter "solver.wall.fast_ns"
let c_wall_reference_ns = Obs.Metrics.counter "solver.wall.reference_ns"
let c_implies_queries = Obs.Metrics.counter "solver.implies.queries"
let c_implies_memo_hits = Obs.Metrics.counter "solver.implies.memo_hits"
let c_implies_wall_ns = Obs.Metrics.counter "solver.implies.wall_ns"

let all =
  [
    c_queries; c_cache_hits; c_cache_misses; c_box_refutations;
    c_syntactic_hits; c_fm_runs; c_fm_rows_built; c_fm_rows_pruned;
    c_tighten_fallbacks; c_overflow_fallbacks; c_reference_runs;
    c_wall_fast_ns; c_wall_reference_ns; c_implies_queries;
    c_implies_memo_hits; c_implies_wall_ns;
  ]

(* Per-domain suppression flag for [quiet]. *)
let quiet_key = Domain.DLS.new_key (fun () -> ref false)

let quiet f =
  let q = Domain.DLS.get quiet_key in
  let saved = !q in
  q := true;
  Fun.protect ~finally:(fun () -> q := saved) f

let counting () = not !(Domain.DLS.get quiet_key)

let bump c = if counting () then Obs.Metrics.Counter.incr c
let add c n = if counting () then Obs.Metrics.Counter.add c n

let query () = bump c_queries
let cache_hit () = bump c_cache_hits
let cache_miss () = bump c_cache_misses
let box_refutation () = bump c_box_refutations
let syntactic_hit () = bump c_syntactic_hits
let fm_run () = bump c_fm_runs
let fm_rows_built n = add c_fm_rows_built n
let fm_rows_pruned n = add c_fm_rows_pruned n
let tighten_fallback () = bump c_tighten_fallbacks
let overflow_fallback () = bump c_overflow_fallbacks
let reference_run () = bump c_reference_runs
let add_fast_ns n = add c_wall_fast_ns n
let add_reference_ns n = add c_wall_reference_ns n
let implies_query () = bump c_implies_queries
let implies_memo_hit () = bump c_implies_memo_hits
let add_implies_ns n = add c_implies_wall_ns n

let get = Obs.Metrics.Counter.get

let snapshot () =
  {
    queries = get c_queries;
    cache_hits = get c_cache_hits;
    cache_misses = get c_cache_misses;
    box_refutations = get c_box_refutations;
    syntactic_hits = get c_syntactic_hits;
    fm_runs = get c_fm_runs;
    fm_rows_built = get c_fm_rows_built;
    fm_rows_pruned = get c_fm_rows_pruned;
    tighten_fallbacks = get c_tighten_fallbacks;
    overflow_fallbacks = get c_overflow_fallbacks;
    reference_runs = get c_reference_runs;
    wall_fast_ns = get c_wall_fast_ns;
    wall_reference_ns = get c_wall_reference_ns;
    implies_queries = get c_implies_queries;
    implies_memo_hits = get c_implies_memo_hits;
    implies_wall_ns = get c_implies_wall_ns;
  }

let diff a b =
  {
    queries = a.queries - b.queries;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    box_refutations = a.box_refutations - b.box_refutations;
    syntactic_hits = a.syntactic_hits - b.syntactic_hits;
    fm_runs = a.fm_runs - b.fm_runs;
    fm_rows_built = a.fm_rows_built - b.fm_rows_built;
    fm_rows_pruned = a.fm_rows_pruned - b.fm_rows_pruned;
    tighten_fallbacks = a.tighten_fallbacks - b.tighten_fallbacks;
    overflow_fallbacks = a.overflow_fallbacks - b.overflow_fallbacks;
    reference_runs = a.reference_runs - b.reference_runs;
    wall_fast_ns = a.wall_fast_ns - b.wall_fast_ns;
    wall_reference_ns = a.wall_reference_ns - b.wall_reference_ns;
    implies_queries = a.implies_queries - b.implies_queries;
    implies_memo_hits = a.implies_memo_hits - b.implies_memo_hits;
    implies_wall_ns = a.implies_wall_ns - b.implies_wall_ns;
  }

let reset () = List.iter (fun c -> Obs.Metrics.Counter.set c 0) all

let pp ppf t =
  Format.fprintf ppf
    "solver: %d queries (%d cache hit / %d miss), %d box-refuted, %d \
     syntactic@\n"
    t.queries t.cache_hits t.cache_misses t.box_refutations t.syntactic_hits;
  Format.fprintf ppf
    "  FM: %d runs, %d rows built, %d pruned; fallbacks: %d tighten, %d \
     overflow, %d reference@\n"
    t.fm_runs t.fm_rows_built t.fm_rows_pruned t.tighten_fallbacks
    t.overflow_fallbacks t.reference_runs;
  Format.fprintf ppf "  implies: %d queries (%d memo hit)@\n" t.implies_queries
    t.implies_memo_hits;
  Format.fprintf ppf
    "  feasible wall: fast %.3f ms, reference %.3f ms; implies wall %.3f \
     ms@\n"
    (float_of_int t.wall_fast_ns /. 1e6)
    (float_of_int t.wall_reference_ns /. 1e6)
    (float_of_int t.implies_wall_ns /. 1e6)

let pp_deterministic ppf t =
  (* everything but the wall-clock sums: counters are
     scheduling-independent (see [quiet]), times never are *)
  Format.fprintf ppf
    "solver: %d queries (%d cache hit / %d miss), %d box-refuted, %d \
     syntactic@\n"
    t.queries t.cache_hits t.cache_misses t.box_refutations t.syntactic_hits;
  Format.fprintf ppf
    "  FM: %d runs, %d rows built, %d pruned; fallbacks: %d tighten, %d \
     overflow, %d reference@\n"
    t.fm_runs t.fm_rows_built t.fm_rows_pruned t.tighten_fallbacks
    t.overflow_fallbacks t.reference_runs;
  Format.fprintf ppf "  implies: %d queries (%d memo hit)@\n" t.implies_queries
    t.implies_memo_hits
