(* Process-wide counters for the solver layer under {!System}.

   Every counter is an [Atomic.t] so the engine's domain pool can bump them
   without locks; totals are exact under parallelism (wall-clock sums are
   per-query deltas, so concurrent queries may sum to more than elapsed
   time — they measure solver work, not latency). *)

type t = {
  queries : int;  (* System.feasible entry points answered *)
  cache_hits : int;
  cache_misses : int;
  box_refutations : int;  (* disjoint/feasible decided by interval boxes *)
  syntactic_hits : int;  (* implies decided without any elimination *)
  fm_runs : int;  (* packed Fourier-Motzkin eliminations performed *)
  fm_rows_built : int;  (* rows produced by FM combination *)
  fm_rows_pruned : int;  (* rows dropped by Imbert counting / dominance *)
  tighten_fallbacks : int;  (* GCD tightening refuted; exact re-run needed *)
  overflow_fallbacks : int;  (* packed arithmetic overflowed; used reference *)
  reference_runs : int;  (* queries answered by the reference path *)
  wall_fast_ns : int;  (* time inside fast-path feasible queries *)
  wall_reference_ns : int;  (* time inside reference-path feasible queries *)
}

let c_queries = Atomic.make 0
let c_cache_hits = Atomic.make 0
let c_cache_misses = Atomic.make 0
let c_box_refutations = Atomic.make 0
let c_syntactic_hits = Atomic.make 0
let c_fm_runs = Atomic.make 0
let c_fm_rows_built = Atomic.make 0
let c_fm_rows_pruned = Atomic.make 0
let c_tighten_fallbacks = Atomic.make 0
let c_overflow_fallbacks = Atomic.make 0
let c_reference_runs = Atomic.make 0
let c_wall_fast_ns = Atomic.make 0
let c_wall_reference_ns = Atomic.make 0

let all =
  [
    c_queries; c_cache_hits; c_cache_misses; c_box_refutations;
    c_syntactic_hits; c_fm_runs; c_fm_rows_built; c_fm_rows_pruned;
    c_tighten_fallbacks; c_overflow_fallbacks; c_reference_runs;
    c_wall_fast_ns; c_wall_reference_ns;
  ]

let bump c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)

let query () = bump c_queries
let cache_hit () = bump c_cache_hits
let cache_miss () = bump c_cache_misses
let box_refutation () = bump c_box_refutations
let syntactic_hit () = bump c_syntactic_hits
let fm_run () = bump c_fm_runs
let fm_rows_built n = add c_fm_rows_built n
let fm_rows_pruned n = add c_fm_rows_pruned n
let tighten_fallback () = bump c_tighten_fallbacks
let overflow_fallback () = bump c_overflow_fallbacks
let reference_run () = bump c_reference_runs
let add_fast_ns n = add c_wall_fast_ns n
let add_reference_ns n = add c_wall_reference_ns n

let snapshot () =
  {
    queries = Atomic.get c_queries;
    cache_hits = Atomic.get c_cache_hits;
    cache_misses = Atomic.get c_cache_misses;
    box_refutations = Atomic.get c_box_refutations;
    syntactic_hits = Atomic.get c_syntactic_hits;
    fm_runs = Atomic.get c_fm_runs;
    fm_rows_built = Atomic.get c_fm_rows_built;
    fm_rows_pruned = Atomic.get c_fm_rows_pruned;
    tighten_fallbacks = Atomic.get c_tighten_fallbacks;
    overflow_fallbacks = Atomic.get c_overflow_fallbacks;
    reference_runs = Atomic.get c_reference_runs;
    wall_fast_ns = Atomic.get c_wall_fast_ns;
    wall_reference_ns = Atomic.get c_wall_reference_ns;
  }

let diff a b =
  {
    queries = a.queries - b.queries;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    box_refutations = a.box_refutations - b.box_refutations;
    syntactic_hits = a.syntactic_hits - b.syntactic_hits;
    fm_runs = a.fm_runs - b.fm_runs;
    fm_rows_built = a.fm_rows_built - b.fm_rows_built;
    fm_rows_pruned = a.fm_rows_pruned - b.fm_rows_pruned;
    tighten_fallbacks = a.tighten_fallbacks - b.tighten_fallbacks;
    overflow_fallbacks = a.overflow_fallbacks - b.overflow_fallbacks;
    reference_runs = a.reference_runs - b.reference_runs;
    wall_fast_ns = a.wall_fast_ns - b.wall_fast_ns;
    wall_reference_ns = a.wall_reference_ns - b.wall_reference_ns;
  }

let reset () = List.iter (fun c -> Atomic.set c 0) all

let pp ppf t =
  Format.fprintf ppf
    "solver: %d queries (%d cache hit / %d miss), %d box-refuted, %d \
     syntactic@\n"
    t.queries t.cache_hits t.cache_misses t.box_refutations t.syntactic_hits;
  Format.fprintf ppf
    "  FM: %d runs, %d rows built, %d pruned; fallbacks: %d tighten, %d \
     overflow, %d reference@\n"
    t.fm_runs t.fm_rows_built t.fm_rows_pruned t.tighten_fallbacks
    t.overflow_fallbacks t.reference_runs;
  Format.fprintf ppf "  feasible wall: fast %.3f ms, reference %.3f ms@\n"
    (float_of_int t.wall_fast_ns /. 1e6)
    (float_of_int t.wall_reference_ns /. 1e6)
