open Numeric

(* Persistent per-system solver contexts (the incremental, conflict-learning
   layer under {!System.implies}).  One [t] per interned system id, shared
   by every domain like the global implies memo, holding *derived facts*
   rather than final answers:

   - direction thresholds: for a normalized direction [d] (gcd-reduced
     coefficient vector over sorted variable ids), rational feasibility of
     [sys /\ d.x <= q] is monotone in [q] with a single threshold
     (inf{d.x : x in sys}, attained for closed rational polyhedra).  Any
     feasible query lower-bounds the threshold from above and any
     infeasible one from below, so later queries on the same direction are
     answered by one rational comparison: a recorded infeasible bound is
     exactly a Farkas certificate (the nonnegative combination FM found)
     re-applied to a tighter constant, a recorded feasible bound is a
     witness point re-used for a looser one.  Both directions are exact —
     no approximation is involved, so answers stay byte-identical to the
     reference eliminator.
   - projected per-variable bounds and variable-set projections, memoizing
     the output-sensitive reference eliminator for the systems the region
     layer re-projects on every rebuild.
   - per-variable activity (occurrence-seeded, bumped on conflict, decayed
     per query, MiniSat-style) consumed by {!Packed.feasible} as an
     elimination-order hint.

   Everything here is a cache of exact facts: dropping it ({!clear}) is
   always sound, and [System.clear_cache] does exactly that alongside the
   implies memo.  All mutation happens under the per-context [lock]; reads
   copy what they need out while holding it. *)

type dir = { mutable min_feasible : Rat.t option; mutable max_infeasible : Rat.t option }

type t = {
  sys : int;  (* interned System id this context belongs to *)
  lock : Mutex.t;
  dirs : (int array * int array, dir) Hashtbl.t;
      (* (ids, gcd-normalized coeffs) -> learned threshold interval *)
  var_bounds : (int, Rat.t option * Rat.t option) Hashtbl.t;
      (* Var.id -> exact projected bounds (System.bounds results) *)
  projs : (int list, Constr.t list) Hashtbl.t;
      (* sorted kept Var.ids -> canonical projection constraint list *)
  activity : (int, float) Hashtbl.t;  (* Var.id -> activity score *)
  mutable bump : float;  (* current bump increment (grows; implicit decay) *)
  mutable seeded : bool;  (* activity table initialised from the rows *)
  mutable box : box_state;  (* cached interval box of the packed rows *)
}

and box_state = Box_unknown | Box_none | Box_some of Packed.box

let registry : (int, t) Hashtbl.t = Hashtbl.create 512
let registry_mutex = Mutex.create ()

let create sys =
  {
    sys;
    lock = Mutex.create ();
    dirs = Hashtbl.create 16;
    var_bounds = Hashtbl.create 8;
    projs = Hashtbl.create 4;
    activity = Hashtbl.create 16;
    bump = 1.0;
    seeded = false;
    box = Box_unknown;
  }

let find sys =
  Mutex.lock registry_mutex;
  let t =
    match Hashtbl.find_opt registry sys with
    | Some t -> t
    | None ->
      let t = create sys in
      Hashtbl.add registry sys t;
      Solver_stats.ctx_context ();
      t
  in
  Mutex.unlock registry_mutex;
  t

let clear () =
  Mutex.lock registry_mutex;
  Hashtbl.reset registry;
  Mutex.unlock registry_mutex

let count () =
  Mutex.lock registry_mutex;
  let n = Hashtbl.length registry in
  Mutex.unlock registry_mutex;
  n

let sys t = t.sys

(* ---------- cached interval box ---------- *)

(* The box is immutable once built; building it under the lock keeps the
   publication race-free, and concurrent lock-free reads of the published
   Hashtbl are safe because nobody mutates it afterwards. *)
let box t ~build =
  Mutex.lock t.lock;
  let b =
    match t.box with
    | Box_none -> None
    | Box_some b -> Some b
    | Box_unknown ->
      let b = build () in
      t.box <- (match b with None -> Box_none | Some b -> Box_some b);
      b
  in
  Mutex.unlock t.lock;
  b

(* ---------- direction thresholds ---------- *)

(* Query: is [sys /\ d.x <= q] feasible?  [Some _] when a learned bound
   decides it, [None] when this is new ground. *)
let check_dir t key q =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.dirs key with
    | None -> None
    | Some d -> (
      match d.min_feasible with
      | Some f when Rat.compare q f >= 0 -> Some true
      | _ -> (
        match d.max_infeasible with
        | Some i when Rat.compare q i <= 0 -> Some false
        | _ -> None))
  in
  Mutex.unlock t.lock;
  (match r with
  | Some true -> Solver_stats.ctx_bound_hit ()
  | Some false -> Solver_stats.ctx_cut_hit ()
  | None -> ());
  r

let learn_dir t key q feas =
  Mutex.lock t.lock;
  let d =
    match Hashtbl.find_opt t.dirs key with
    | Some d -> d
    | None ->
      let d = { min_feasible = None; max_infeasible = None } in
      Hashtbl.add t.dirs key d;
      d
  in
  if feas then
    d.min_feasible <-
      (match d.min_feasible with
      | Some f when Rat.compare f q <= 0 -> Some f
      | _ -> Some q)
  else
    d.max_infeasible <-
      (match d.max_infeasible with
      | Some i when Rat.compare i q >= 0 -> Some i
      | _ -> Some q);
  Mutex.unlock t.lock

(* ---------- projected bounds / projections ---------- *)

let find_bounds t v =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.var_bounds v in
  Mutex.unlock t.lock;
  if r <> None then Solver_stats.ctx_bound_hit ();
  r

let store_bounds t v b =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.var_bounds v) then Hashtbl.add t.var_bounds v b;
  Mutex.unlock t.lock

let find_proj t key =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.projs key in
  Mutex.unlock t.lock;
  if r <> None then Solver_stats.ctx_proj_hit ();
  r

let store_proj t key cs =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.projs key) then Hashtbl.add t.projs key cs;
  Mutex.unlock t.lock

(* ---------- variable activity ---------- *)

let ensure_activity t seed =
  Mutex.lock t.lock;
  if not t.seeded then begin
    t.seeded <- true;
    List.iter
      (fun (v, n) ->
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt t.activity v) in
        Hashtbl.replace t.activity v (cur +. float_of_int n))
      (seed ())
  end;
  Mutex.unlock t.lock

(* MiniSat-style exponential decay by growing the bump increment instead of
   rescaling every score on every query; rescale only on overflow danger. *)
let decay t =
  Mutex.lock t.lock;
  t.bump <- t.bump /. 0.95;
  if t.bump > 1e100 then begin
    Hashtbl.iter (fun v a -> Hashtbl.replace t.activity v (a *. 1e-100)) t.activity;
    t.bump <- t.bump *. 1e-100
  end;
  Mutex.unlock t.lock

let bump_vars t ids =
  Mutex.lock t.lock;
  Array.iter
    (fun v ->
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt t.activity v) in
      Hashtbl.replace t.activity v (cur +. t.bump))
    ids;
  Mutex.unlock t.lock

(* Snapshot the activity table into a private copy so {!Packed.feasible}
   can consult it without taking the lock per variable (and without racing
   concurrent bumps mid-elimination). *)
let prio t =
  Mutex.lock t.lock;
  let copy = Hashtbl.copy t.activity in
  Mutex.unlock t.lock;
  fun v -> Option.value ~default:0.0 (Hashtbl.find_opt copy v)
