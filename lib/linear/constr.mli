(** Affine constraints [e <= 0] or [e = 0]. *)

open Numeric

type op = Le | Eq

type t
(** Hash-consed: structurally equal constraints (after {!make}'s
    normalization) are the same value with the same {!id}. *)

val make : Expr.t -> op -> t
(** Normalizes coefficients: scaled to coprime integers, and for [Eq] the
    leading coefficient is made positive. *)

val le : Expr.t -> Expr.t -> t
(** [le a b] is [a - b <= 0], i.e. [a <= b]. *)

val ge : Expr.t -> Expr.t -> t
val eq : Expr.t -> Expr.t -> t

val between : Expr.t -> lo:int -> hi:int -> t list
(** The closed-interval box [lo <= e <= hi] as its two inequalities (the
    shape declared index-array bounds refine MESSY subscripts into). *)

val expr : t -> Expr.t
val op : t -> op

val id : t -> int
(** Unique intern id (equality/memo keys only; never ordering or
    persistence — see {!Expr.id}). *)

val is_trivial : t -> bool option
(** For a constant constraint, [Some true] if always satisfied, [Some false]
    if unsatisfiable; [None] if the constraint mentions variables. *)

val subst : Var.t -> Expr.t -> t -> t

val map_vars : (Var.t -> Var.t) -> t -> t
(** Rename variables; the result is re-normalized. *)

val holds : (Var.t -> Rat.t) -> t -> bool

val vars : t -> Var.t list
val mem : Var.t -> t -> bool

val equal : t -> t -> bool
(** One integer comparison (intern ids). *)

val compare : t -> t -> int
(** Structural order (scheduling-independent). *)

val pp : Format.formatter -> t -> unit
