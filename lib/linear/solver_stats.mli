(** Process-wide counters for the fast solver layer in {!System}.

    Every counter is an ["solver.*"] metric in the {!Obs.Metrics} registry
    (this module is a facade over it), atomic so engine worker domains can
    update them without locks.  [snapshot]/[diff] let callers (the engine,
    the bench harness) attribute counter deltas to a particular run.

    All counters except the wall-clock sums are scheduling-independent:
    when a worker domain re-computes a query that another domain's memo
    already answered, {!System} wraps the recompute in {!quiet}, so each
    distinct system contributes to [cache_misses], [fm_runs], the row
    counts and the fallback counters exactly once however the pool
    interleaves the work — [--stats] counter output is identical at any
    [--jobs] setting. *)

type t = {
  queries : int;  (** [System.feasible] entry points answered *)
  cache_hits : int;
  cache_misses : int;
  box_refutations : int;
      (** queries decided by the per-variable interval bounding box *)
  syntactic_hits : int;  (** [implies] decided without any elimination *)
  fm_runs : int;  (** packed Fourier-Motzkin eliminations performed *)
  fm_rows_built : int;  (** rows produced by FM pair combination *)
  fm_rows_pruned : int;  (** rows dropped by Imbert counting / dominance *)
  tighten_fallbacks : int;
      (** GCD tightening refuted a system; exact re-run was needed *)
  overflow_fallbacks : int;
      (** packed arithmetic overflowed; query used the reference path *)
  reference_runs : int;  (** queries answered by the reference path *)
  wall_fast_ns : int;  (** nanoseconds inside fast-path feasible queries *)
  wall_reference_ns : int;
      (** nanoseconds inside reference-path feasible queries *)
  implies_queries : int;  (** [System.implies] entry points answered *)
  implies_memo_hits : int;
      (** implies queries answered by the global (system id, constraint id)
          memo — scheduling-independent: hits are counted against the seen
          registry, so every distinct pair counts one miss however the pool
          races *)
  implies_wall_ns : int;
      (** nanoseconds inside [System.implies], memo hits included *)
}

val query : unit -> unit
val cache_hit : unit -> unit
val cache_miss : unit -> unit
val box_refutation : unit -> unit
val syntactic_hit : unit -> unit
val fm_run : unit -> unit
val fm_rows_built : int -> unit
val fm_rows_pruned : int -> unit
val tighten_fallback : unit -> unit
val overflow_fallback : unit -> unit
val reference_run : unit -> unit
val add_fast_ns : int -> unit
val add_reference_ns : int -> unit
val implies_query : unit -> unit
val implies_memo_hit : unit -> unit
val add_implies_ns : int -> unit

val snapshot : unit -> t
(** Current counter values. *)

val diff : t -> t -> t
(** [diff later earlier] is the per-field difference. *)

val quiet : (unit -> 'a) -> 'a
(** Run [f] with counting suppressed on the calling domain ({!System} uses
    this for redundant cross-domain recomputes; see the determinism note
    above). *)

val reset : unit -> unit
(** Zero every counter (bench harness only; the engine uses [diff]). *)

val pp : Format.formatter -> t -> unit

val pp_deterministic : Format.formatter -> t -> unit
(** Like [pp] without the wall-clock line — every printed number is
    scheduling-independent, so the output is diffable in CI. *)
