(** Process-wide counters for the fast solver layer in {!System}.

    Every counter is an ["solver.*"] metric in the {!Obs.Metrics} registry
    (this module is a facade over it), atomic so engine worker domains can
    update them without locks.  [snapshot]/[diff] let callers (the engine,
    the bench harness) attribute counter deltas to a particular run.

    All counters except the wall-clock sums, [implies_l1_hits] and the
    [ctx_*] group are scheduling-independent: when a worker domain
    re-computes a query that another domain's memo already answered — or
    when the learned core pays an elimination whose necessity depends on
    query arrival order — {!System} wraps the compute in {!quiet}, so each
    distinct system contributes to [cache_misses], [fm_runs], the row
    counts and the fallback counters exactly once however the pool
    interleaves the work — [--stats] counter output is identical at any
    [--jobs] setting.  The learned-core telemetry ([ctx_*],
    [implies_l1_hits]) counts scheduling-dependent work by design and is
    excluded from {!pp_deterministic}. *)

type t = {
  queries : int;  (** [System.feasible] entry points answered *)
  cache_hits : int;
  cache_misses : int;
  box_refutations : int;
      (** queries decided by the per-variable interval bounding box *)
  syntactic_hits : int;  (** [implies] decided without any elimination *)
  fm_runs : int;  (** packed Fourier-Motzkin eliminations performed *)
  fm_rows_built : int;  (** rows produced by FM pair combination *)
  fm_rows_pruned : int;  (** rows dropped by Imbert counting / dominance *)
  tighten_fallbacks : int;
      (** GCD tightening refuted a system; exact re-run was needed *)
  overflow_fallbacks : int;
      (** packed arithmetic overflowed; query used the reference path *)
  reference_runs : int;  (** queries answered by the reference path *)
  small_runs : int;
      (** feasibility queries routed straight to the reference eliminator
          because the system is below the small-system threshold (packed
          setup costs more than it saves there) *)
  wall_fast_ns : int;  (** nanoseconds inside fast-path feasible queries *)
  wall_reference_ns : int;
      (** nanoseconds inside reference-path feasible queries *)
  implies_queries : int;  (** [System.implies] entry points answered *)
  implies_memo_hits : int;
      (** implies queries answered by a memo layer (the global
          (system id, constraint id) memo or a per-domain L1 table).
          Derived as [implies_queries - fresh computes], which keeps the
          total scheduling-independent even though which layer answered a
          racing query is not *)
  implies_wall_ns : int;
      (** nanoseconds inside computed [System.implies] queries; L1 hits
          are deliberately untimed (the clock reads would cost more than
          the lookup) *)
  implies_l1_hits : int;
      (** implies queries answered by the calling domain's L1 table;
          scheduling-dependent, excluded from {!pp_deterministic} *)
  ctx_contexts : int;  (** learned solver contexts created *)
  ctx_cut_hits : int;
      (** assumption queries refuted by a learned Farkas cut (a recorded
          infeasibility threshold dominating the query) *)
  ctx_bound_hits : int;
      (** assumption queries answered by a learned feasibility witness, or
          bounds served from a context *)
  ctx_proj_hits : int;  (** projections served from a context *)
  ctx_elims : int;  (** eliminations paid inside learned contexts *)
  ctx_activity_reorders : int;
      (** FM variable picks where activity overrode the min-cost order *)
}

val query : unit -> unit
val cache_hit : unit -> unit
val cache_miss : unit -> unit
val box_refutation : unit -> unit
val syntactic_hit : unit -> unit
val fm_run : unit -> unit
val fm_rows_built : int -> unit
val fm_rows_pruned : int -> unit
val tighten_fallback : unit -> unit
val overflow_fallback : unit -> unit
val reference_run : unit -> unit
val small_run : unit -> unit
val add_fast_ns : int -> unit
val add_reference_ns : int -> unit
val implies_query : unit -> unit

val implies_fresh : unit -> unit
(** A fresh implies compute (first arrival of a distinct (system,
    constraint) pair when the memo is on; every call when it is off). *)

val add_implies_ns : int -> unit

(** Learned-core telemetry: bumped unconditionally, including under
    {!quiet} (see the determinism note above). *)

val implies_l1_hit : unit -> unit
val ctx_context : unit -> unit
val ctx_cut_hit : unit -> unit
val ctx_bound_hit : unit -> unit
val ctx_proj_hit : unit -> unit
val ctx_elim : unit -> unit
val ctx_activity_reorder : unit -> unit

val snapshot : unit -> t
(** Current counter values. *)

val diff : t -> t -> t
(** [diff later earlier] is the per-field difference. *)

val absorb : t -> unit
(** Add a snapshot diff computed in another process (a shard worker ships
    its per-task [diff]) into this process's counters, so coordinator
    totals cover work done everywhere. *)

val to_alist : t -> (string * int) list
(** Every field as [(name, value)], in declaration order — the
    serialization the run ledger and other exporters use, kept here so a
    new counter can't be added without appearing in them. *)

val quiet : (unit -> 'a) -> 'a
(** Run [f] with counting suppressed on the calling domain ({!System} uses
    this for redundant cross-domain recomputes and for learned-context
    eliminations; see the determinism note above). *)

val reset : unit -> unit
(** Zero every counter (bench harness only; the engine uses [diff]). *)

val pp : Format.formatter -> t -> unit

val pp_deterministic : Format.formatter -> t -> unit
(** Like [pp] without the wall-clock and learned-core telemetry lines —
    every printed number is scheduling-independent, so the output is
    diffable in CI. *)
