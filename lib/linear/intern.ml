let mix acc h = (acc * 0x01000193) lxor (h land max_int)

let shards = 64 (* power of two; indexed by the low bits of the hash *)

module Make (H : sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
  val with_id : t -> int -> t
  val name : string
end) =
struct
  module Tbl = Hashtbl.Make (struct
    type t = H.t

    let equal = H.equal
    let hash t = H.hash t land max_int
  end)

  type shard = { mutex : Mutex.t; tbl : H.t Tbl.t }

  let table =
    Array.init shards (fun _ ->
        { mutex = Mutex.create (); tbl = Tbl.create 256 })

  (* ids are unique across shards; 0 is never handed out so that freshly
     built candidates (id -1) can never collide with a canonical id *)
  let next_id = Atomic.make 1
  let c_hits = Obs.Metrics.counter ("linear.intern." ^ H.name ^ ".hits")
  let c_misses = Obs.Metrics.counter ("linear.intern." ^ H.name ^ ".misses")

  let intern node =
    let s = table.(H.hash node land (shards - 1)) in
    Mutex.lock s.mutex;
    match Tbl.find_opt s.tbl node with
    | Some v ->
      Mutex.unlock s.mutex;
      Obs.Metrics.Counter.incr c_hits;
      v
    | None ->
      let v = H.with_id node (Atomic.fetch_and_add next_id 1) in
      Tbl.add s.tbl v v;
      Mutex.unlock s.mutex;
      Obs.Metrics.Counter.incr c_misses;
      v
end
