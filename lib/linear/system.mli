(** Conjunctions of affine constraints, with Fourier-Motzkin elimination.

    This is the solver the paper's Regions method relies on (Section III:
    "Fourier-Motzkin linear system solver, which has worst case exponential
    time, is needed to compare Regions").  All decisions are exact over the
    rationals; see the individual functions for how that relates to the
    integer index sets regions denote. *)

open Numeric

type t
(** A set of constraints, kept deduplicated and free of trivially-true
    members.  An unsatisfiable constant constraint is retained so that
    infeasibility is observable.

    Hash-consed: the canonical constraint list is interned, so structurally
    equal systems are the same value, {!equal} is one integer comparison,
    and the solver memos key on {!id}.  The packed-row translation backing
    the fast queries is cached inside the interned node (computed at most
    once per process). *)

val id : t -> int
(** Unique intern id of the canonical form.  Allocation-order dependent —
    valid for equality and memo keys within the process, never for
    ordering or persistence. *)

val equal : t -> t -> bool
(** Structural equality of the canonical forms, answered by id. *)

val top : t
(** The unconstrained system (whole space). *)

val bottom : t
(** A canonical infeasible system. *)

val of_list : Constr.t list -> t
val to_list : t -> Constr.t list
val add : Constr.t -> t -> t
val meet : t -> t -> t
(** Conjunction. *)

val size : t -> int
val vars : t -> Var.Set.t

val eliminate : Var.t -> t -> t
(** Fourier-Motzkin projection of one variable: the result's rational
    solution set is exactly the shadow of the input's.  Equalities involving
    the variable are used as exact substitutions. *)

val eliminate_all : Var.t list -> t -> t

val project_onto : Var.Set.t -> t -> t
(** Eliminates every variable not in the given set. *)

val feasible : t -> bool
(** Rational feasibility.  [false] guarantees the system has no integer
    points either, which is the direction the dependence/disjointness tests
    need for soundness.

    Answered by the packed integer solver ({!Packed}) with GCD tightening,
    Imbert redundancy pruning, and a per-domain memo cache; refutations that
    depended on strict tightening are re-checked exactly, and overflow falls
    back to the reference eliminator, so the answer always equals
    {!Reference.feasible}. *)

val subst : Var.t -> Expr.t -> t -> t

val map_vars : (Var.t -> Var.t) -> t -> t
(** Rename variables in every constraint (re-normalized and re-sorted). *)

val bounds : Var.t -> t -> Rat.t option * Rat.t option
(** [(lo, hi)] — the tightest constant bounds on the variable implied by the
    system (other variables are projected away first).  [None] means
    unbounded in that direction. *)

val implies : t -> Constr.t -> bool
(** Entailment over integer points (constraints have integer coefficients, so
    the negation of [e <= 0] is [e >= 1]).  Sound and complete for integer
    solution sets whenever FM is (no integrality gaps are introduced by the
    negation). *)

val includes : t -> t -> bool
(** [includes a b] — the solution set of [a] contains that of [b]. *)

val disjoint : t -> t -> bool
(** No common rational point; implies no common integer point. *)

val equal_semantic : t -> t -> bool
(** Mutual inclusion. *)

val simplify : t -> t
(** Removes constraints entailed by the rest (quadratic in the system size;
    used to keep interprocedural summaries small after unions). *)

val sample : t -> (Var.t -> Rat.t) option
(** A rational point satisfying the system, if feasible: found by
    back-substitution through the elimination order. *)

(** {2 Solver cores}

    Three interchangeable query cores, all byte-identical in answers and
    outputs:

    - [`Learned] (the default): the packed solver plus persistent
      per-system {!Context}s — learned direction thresholds (Farkas cuts /
      feasibility witnesses) answer repeat assumption queries by one
      rational comparison, eliminations are ordered by conflict activity,
      and bounds/projections are memoized per system.  A per-domain L1
      table answers repeat implies queries without touching the global
      memo's lock.
    - [`Packed]: the packed integer Fourier-Motzkin fast path without the
      learned layer (PR 5 behavior; kept for benchmarking the learned
      layer's contribution).
    - [`Reference]: the exact rational reference eliminator everywhere.

    The learned layer only engages when the implies memo may (cache on, no
    budget, no fault injection, not reference mode): it is a memo layer
    itself, so the same exactness conditions apply. *)

type core = [ `Learned | `Packed | `Reference ]

val set_solver_core : core -> unit
val solver_core : unit -> core

val set_small_threshold : int -> unit
(** Feasibility queries whose cost (constraint count times variable count,
    as for {!set_step_budget}) is at or below this threshold skip packed
    setup and run the reference eliminator directly — on tiny systems the
    packing and box construction cost more than the elimination they
    accelerate.  Routed queries are counted in [Solver_stats.small_runs].
    Default 2, the crossover a threshold sweep over the NAS LU region
    systems measured (the balance is host-dependent, hence the knob). *)

(** {2 Solver knobs}

    The fast query layer can be disabled wholesale ([set_reference_mode
    true] routes {!feasible}/{!implies}/{!includes}/{!disjoint} through the
    reference eliminator) or partially ([set_cache_enabled false] keeps the
    packed solver but skips memoization).  Both knobs exist for differential
    testing and benchmarking; answers are identical in every configuration. *)

val set_reference_mode : bool -> unit
(** Equivalent to toggling between [`Reference] and the previously
    selected non-reference core (the [`Learned]/[`Packed] choice is
    remembered across toggles). *)

val reference_mode : unit -> bool

val set_step_budget : int option -> unit
(** Degradation valve for {!feasible} (and through it {!implies} /
    {!includes} / {!disjoint}): a query whose cost — constraint count
    times variable count, a deterministic proxy for elimination work —
    exceeds the budget answers from the interval box alone ([false] only
    when the single-variable rows are already contradictory).  The
    degraded direction is conservative everywhere the engine consumes it
    (entailment and disjointness degrade to "cannot prove", so regions
    only grow).  Degraded answers are counted in the [solver.degraded]
    metric and never memoized; [None] (the default) restores exact
    answers.  Reference mode ignores the budget.  Read back with
    {!get_step_budget} (shard workers mirror the coordinator's knob).
    The fault-injection
    site ["solver"] ({!Fault.Solver}) forces the same degradation on the
    targeted queries. *)

val get_step_budget : unit -> int option

val set_cache_enabled : bool -> unit
(** The memo cache for {!feasible} is per-domain (domain-local storage), so
    parallel engine workers never contend on it. *)

val set_implies_memo_enabled : bool -> unit
(** The {!implies} memo is global, keyed by (system id, constraint id) —
    an implies answer amortizes several eliminations, so hits are shared
    across domains.  It is bypassed automatically whenever answers could
    be degraded (step budget, fault injection) or the run measures raw
    paths (reference mode, cache off); this knob additionally disables it
    for the reference join path ([--join-path reference] and the regions
    bench).  Answers are identical either way. *)

val implies_memo_enabled : unit -> bool

val clear_cache : unit -> unit
(** Drop every domain's memo table (feasible memos and implies L1 tables),
    the global seen-sets, the implies memo, and every learned
    {!Context} — direction thresholds, activity tables, bounds and
    projection memos (benchmarks and run boundaries; never required for
    correctness since cached answers are immutable exact facts).  Only
    call while no other domain is querying. *)

(** The pristine pre-optimization query paths, used as ground truth by the
    solver equivalence tests and the before/after benchmarks.  [bounds] and
    [sample] are aliases: those are output-sensitive and were not changed. *)
module Reference : sig
  val feasible : t -> bool
  val implies : t -> Constr.t -> bool
  val includes : t -> t -> bool
  val disjoint : t -> t -> bool
  val equal_semantic : t -> t -> bool
  val bounds : Var.t -> t -> Rat.t option * Rat.t option
  val sample : t -> (Var.t -> Rat.t) option
end

val pp : Format.formatter -> t -> unit
