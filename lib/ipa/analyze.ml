open Whirl
open Regions

type proc_table = {
  t_proc : string;
  t_accesses : Collect.access list;
}

type result = {
  r_module : Ir.module_;
  r_callgraph : Callgraph.t;
  r_infos : (string * Collect.pu_info) list;
  r_tables : proc_table list;
  r_summaries : (string * Summary.t) list;
  r_rows : Rgnfile.Row.t list;
  r_dgn : Rgnfile.Files.dgn;
  r_cfgs : (string * Cfg.t) list;
}

(* ------------------------------------------------------------------ *)
(* Display conversion *)

let source_lows m pu st =
  match Ir.ty_of m pu st with
  | Symtab.Ty_array { dims; _ } ->
    let lows = List.map (fun (lo, _) -> Option.value lo ~default:0) dims in
    (match pu.Ir.pu_lang with
    | Lang.Ast.Fortran -> List.rev lows  (* to row-major order *)
    | Lang.Ast.C -> lows)
  | Symtab.Ty_scalar _ -> []

let bound_str lo = function
  | Region.Bconst x -> string_of_int (x + lo)
  | Region.Bsym e ->
    Format.asprintf "%a" Linear.Expr.pp
      (Linear.Expr.add_const (Numeric.Rat.of_int lo) e)
  | Region.Bunknown -> "*"

let stride_str = function
  | Region.Sconst s -> string_of_int s
  | Region.Sunknown -> "*"

let display_bounds m pu st region =
  let lows = source_lows m pu st in
  let dims = Region.dim_list region in
  let lows =
    if List.length lows = List.length dims then lows
    else List.map (fun _ -> 0) dims
  in
  let lb =
    String.concat "|"
      (List.map2 (fun lo d -> bound_str lo d.Region.lb) lows dims)
  in
  let ub =
    String.concat "|"
      (List.map2 (fun lo d -> bound_str lo d.Region.ub) lows dims)
  in
  let stride =
    String.concat "|" (List.map (fun d -> stride_str d.Region.stride) dims)
  in
  (lb, ub, stride)

let dim_size_str m pu st =
  Collect.extents_of m pu st
  |> List.map (fun e -> string_of_int (Option.value e ~default:0))
  |> String.concat "|"

(* ------------------------------------------------------------------ *)
(* Analysis *)

let summarize_pu (m : Ir.module_) ~lookup (info : Collect.pu_info) =
  let pu = info.Collect.p_pu in
  let local = Summary.of_local m pu info.Collect.p_accesses in
  let extra = ref [] in
  let entries = ref [] in
  List.iter
    (fun (site : Collect.site) ->
      match Ir.find_pu m site.Collect.s_callee with
      | None -> ()
      | Some callee_pu ->
        let callee_summary =
          match lookup site.Collect.s_callee with
          | Some s -> s
          | None ->
            (* cycle in the call graph: worst-case summary *)
            Summary.opaque m callee_pu
        in
        let translated =
          Summary.translate m ~caller:pu ~callee:callee_pu ~site callee_summary
        in
        List.iter
          (fun (tr : Summary.translated) ->
            extra :=
              {
                Collect.ac_st = tr.Summary.t_st;
                ac_mode = tr.Summary.t_mode;
                ac_region = tr.Summary.t_region;
                ac_loc = site.Collect.s_loc;
                ac_via = Some site.Collect.s_callee;
                ac_sparse = None;
              }
              :: !extra;
            let key =
              if Ir.is_global_idx tr.Summary.t_st then
                Summary.Kglobal tr.Summary.t_st
              else
                match
                  let rec pos i = function
                    | [] -> None
                    | f :: rest ->
                      if f = tr.Summary.t_st then Some i else pos (i + 1) rest
                  in
                  pos 0 pu.Ir.pu_formals
                with
                | Some p -> Summary.Kformal p
                | None -> Summary.Kglobal (-1)
            in
            entries :=
              {
                Summary.e_key = key;
                e_mode = tr.Summary.t_mode;
                e_region = tr.Summary.t_region;
                e_count = tr.Summary.t_count;
              }
              :: !entries)
          translated)
    info.Collect.p_sites;
  (* one bucketed pass over all call-site contributions (same result as the
     per-entry add_entry fold: entries are replayed in collection order) *)
  let summary = Summary.add_entries local (List.rev !entries) in
  (* entries that target caller locals (key Kglobal (-1)) don't escape *)
  let exported =
    List.filter
      (fun (e : Summary.entry) -> e.Summary.e_key <> Summary.Kglobal (-1))
      summary
  in
  (exported, List.rev !extra)

let assemble (m : Ir.module_) cg ~infos ~summaries ~propagated ~cfgs : result =
  let tables =
    List.map
      (fun (name, (info : Collect.pu_info)) ->
        { t_proc = name; t_accesses = info.Collect.p_accesses @ propagated name })
      infos
  in
  (* ---------------------------------------------------------------- *)
  (* Rows *)
  let is_global st = Ir.is_global_idx st in
  (* reference counts per (scope, array, mode, object file), direct accesses
     only -- Fig 14's "u USE 110" counts the references in rhs.o, not
     program-wide *)
  let counts : (string * string * string * string, int) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (name, (info : Collect.pu_info)) ->
      let pu = info.Collect.p_pu in
      List.iter
        (fun (a : Collect.access) ->
          if a.Collect.ac_via = None then begin
            let scope = if is_global a.Collect.ac_st then "@" else name in
            let arr = Ir.st_name m pu a.Collect.ac_st in
            let key =
              (scope, arr, Mode.to_string a.Collect.ac_mode, pu.Ir.pu_object)
            in
            Hashtbl.replace counts key
              (1 + try Hashtbl.find counts key with Not_found -> 0)
          end)
        info.Collect.p_accesses)
    infos;
  let rows = ref [] in
  List.iter
    (fun (name, (info : Collect.pu_info)) ->
      let pu = info.Collect.p_pu in
      List.iter
        (fun (a : Collect.access) ->
          if a.Collect.ac_via = None then begin
            let st = a.Collect.ac_st in
            let scope = if is_global st then "@" else name in
            let arr = Ir.st_name m pu st in
            let mode = Mode.to_string a.Collect.ac_mode in
            let references =
              try Hashtbl.find counts (scope, arr, mode, pu.Ir.pu_object)
              with Not_found -> 1
            in
            let entry = Ir.st_entry m pu st in
            let symtab = if is_global st then m.Ir.m_global else pu.Ir.pu_symtab in
            let tot = Symtab.total_elems symtab entry.Symtab.st_ty in
            let bytes = Symtab.size_bytes symtab entry.Symtab.st_ty in
            let lb, ub, stride = display_bounds m pu st a.Collect.ac_region in
            let row =
              {
                Rgnfile.Row.scope;
                array = arr;
                file = pu.Ir.pu_object;
                mode;
                references;
                dimensions = List.length (Collect.extents_of m pu st);
                lb;
                ub;
                stride;
                element_size = Symtab.elem_size symtab entry.Symtab.st_ty;
                data_type =
                  Lang.Ast.dtype_name (Symtab.dtype_of_ty symtab entry.Symtab.st_ty);
                dim_size = dim_size_str m pu st;
                tot_size = tot;
                size_bytes = bytes;
                mem_loc = Printf.sprintf "%x" entry.Symtab.st_mem_loc;
                acc_density = Rgnfile.Row.density ~references ~size_bytes:bytes;
                line = Lang.Loc.line a.Collect.ac_loc;
                props =
                  Lang.Iprop.flags_token
                    (Region.assumed_flags a.Collect.ac_region);
              }
            in
            rows := row :: !rows
          end)
        info.Collect.p_accesses)
    infos;
  let rows = List.rev !rows in
  (* ---------------------------------------------------------------- *)
  let dgn =
    {
      Rgnfile.Files.dgn_sources =
        List.map
          (fun f ->
            let lang =
              match Filename.extension f with ".c" -> "c" | _ -> "fortran"
            in
            (f, lang))
          m.Ir.m_program.Lang.Sema.prog_files;
      dgn_procs =
        List.map
          (fun pu ->
            (pu.Ir.pu_name, pu.Ir.pu_file, Lang.Loc.line pu.Ir.pu_loc))
          m.Ir.m_pus;
      dgn_edges =
        List.map
          (fun (cs : Callgraph.callsite) ->
            (cs.Callgraph.cs_caller, cs.Callgraph.cs_callee,
             Lang.Loc.line cs.Callgraph.cs_loc))
          (Callgraph.callsites cg);
    }
  in
  let summaries_list =
    List.filter_map
      (fun (name, _) -> Option.map (fun s -> (name, s)) (summaries name))
      infos
  in
  {
    r_module = m;
    r_callgraph = cg;
    r_infos = infos;
    r_tables = tables;
    r_summaries = summaries_list;
    r_rows = rows;
    r_dgn = dgn;
    r_cfgs = cfgs;
  }

let summary_of result name = List.assoc name result.r_summaries

let write_outputs result ~dir ~project =
  let path name = Filename.concat dir name in
  let rgn = path (project ^ ".rgn") in
  Obs.Span.with_ ~cat:"io" ~name:"emit:rgn" (fun () ->
      Rgnfile.Files.save ~path:rgn (Rgnfile.Files.write_rgn result.r_rows));
  let dgnp = path (project ^ ".dgn") in
  Obs.Span.with_ ~cat:"io" ~name:"emit:dgn" (fun () ->
      Rgnfile.Files.save ~path:dgnp (Rgnfile.Files.write_dgn result.r_dgn));
  let cfgp = path (project ^ ".cfg") in
  let blocks =
    List.concat_map
      (fun (proc, cfg) ->
        Array.to_list
          (Array.map
             (fun (b : Cfg.block) ->
               {
                 Rgnfile.Files.cb_proc = proc;
                 cb_id = b.Cfg.id;
                 cb_label = b.Cfg.label;
                 cb_succs = b.Cfg.succs;
               })
             cfg.Cfg.blocks))
      result.r_cfgs
  in
  Obs.Span.with_ ~cat:"io" ~name:"emit:cfg" (fun () ->
      Rgnfile.Files.save ~path:cfgp (Rgnfile.Files.write_cfg blocks));
  [ rgn; dgnp; cfgp ]
