open Whirl
open Regions
open Linear
open Numeric

(* ------------------------------------------------------------------ *)
(* Variable encoding *)

let encode_var m v =
  match Var.kind v with
  | Var.Subscript k -> Printf.sprintf "d%d" k
  | Var.Sym -> (
    match Collect.sym_info v with
    | Some ("", code) ->
      (* global scalar *)
      let name =
        (Symtab.st m.Ir.m_global (code - Ir.global_base)).Symtab.st_name
      in
      Printf.sprintf "s:@:%s" name
    | Some (owner, code) -> (
      match Ir.find_pu m owner with
      | Some pu ->
        Printf.sprintf "s:%s:%s" owner
          (Symtab.st pu.Ir.pu_symtab code).Symtab.st_name
      | None -> Printf.sprintf "s:%s:?" owner)
    | None -> Printf.sprintf "s:?:%s" (Var.name v))
  | Var.Ivar -> Printf.sprintf "s:?:%s" (Var.name v)

let decode_var m token =
  if String.length token > 1 && token.[0] = 'd' then
    match int_of_string_opt (String.sub token 1 (String.length token - 1)) with
    | Some k -> Ok (Var.subscript k)
    | None -> Error (Printf.sprintf "bad subscript variable %S" token)
  else
    match String.split_on_char ':' token with
    | [ "s"; "@"; name ] -> (
      match Symtab.find_st m.Ir.m_global name with
      | Some idx ->
        let st = Ir.encode_global idx in
        Ok (Collect.sym_var ~m ~pu:"" ~st ~name)
      | None -> Error (Printf.sprintf "unknown global scalar %S" name))
    | [ "s"; owner; name ] -> (
      match Ir.find_pu m owner with
      | None -> Error (Printf.sprintf "unknown procedure %S" owner)
      | Some pu -> (
        match Symtab.find_st pu.Ir.pu_symtab name with
        | Some st -> Ok (Collect.sym_var ~m ~pu:owner ~st ~name)
        | None -> (
          match Symtab.find_st m.Ir.m_global name with
          | Some idx ->
            let st = Ir.encode_global idx in
            Ok (Collect.sym_var ~m ~pu:"" ~st ~name)
          | None ->
            Error (Printf.sprintf "unknown scalar %S in %S" name owner))))
    | _ -> Error (Printf.sprintf "bad variable token %S" token)

(* ------------------------------------------------------------------ *)
(* Rational and constraint encoding *)

let encode_rat r =
  if Rat.den r = 1 then string_of_int (Rat.num r)
  else Printf.sprintf "%d/%d" (Rat.num r) (Rat.den r)

let decode_rat s =
  match String.split_on_char '/' s with
  | [ n ] -> (
    match int_of_string_opt n with
    | Some n -> Ok (Rat.of_int n)
    | None -> Error (Printf.sprintf "bad rational %S" s))
  | [ n; d ] -> (
    match int_of_string_opt n, int_of_string_opt d with
    | Some n, Some d when d <> 0 -> Ok (Rat.make n d)
    | _ -> Error (Printf.sprintf "bad rational %S" s))
  | _ -> Error (Printf.sprintf "bad rational %S" s)

(* constraint: "<le|eq> <const> [<coeff>*<var> ...]" *)
let encode_constr m c =
  let e = Constr.expr c in
  let op = match Constr.op c with Constr.Le -> "le" | Constr.Eq -> "eq" in
  let terms =
    Expr.fold
      (fun v coeff acc ->
        Printf.sprintf "%s*%s" (encode_rat coeff) (encode_var m v) :: acc)
      e []
  in
  String.concat " " (op :: encode_rat (Expr.constant e) :: List.rev terms)

let ( let* ) = Result.bind

let decode_constr m line =
  match String.split_on_char ' ' line with
  | op :: const :: terms ->
    let* op =
      match op with
      | "le" -> Ok Constr.Le
      | "eq" -> Ok Constr.Eq
      | other -> Error (Printf.sprintf "bad constraint op %S" other)
    in
    let* const = decode_rat const in
    let* expr =
      List.fold_left
        (fun acc term ->
          let* acc = acc in
          match String.index_opt term '*' with
          | None -> Error (Printf.sprintf "bad term %S" term)
          | Some i ->
            let* coeff = decode_rat (String.sub term 0 i) in
            let* v =
              decode_var m (String.sub term (i + 1) (String.length term - i - 1))
            in
            Ok (Expr.add acc (Expr.monom coeff v)))
        (Ok (Expr.const const))
        terms
    in
    Ok (Constr.make expr op)
  | _ -> Error (Printf.sprintf "bad constraint line %S" line)

(* ------------------------------------------------------------------ *)
(* Regions, entries, units *)

let encode_stride = function
  | Region.Sconst s -> string_of_int s
  | Region.Sunknown -> "*"

let decode_stride = function
  | "*" -> Ok Region.Sunknown
  | s -> (
    match int_of_string_opt s with
    | Some v -> Ok (Region.Sconst v)
    | None -> Error (Printf.sprintf "bad stride %S" s))

let encode_key m = function
  | Summary.Kformal p -> Printf.sprintf "F %d" p
  | Summary.Kglobal g ->
    Printf.sprintf "G %s" (Symtab.st m.Ir.m_global (g - Ir.global_base)).Symtab.st_name

let decode_key m s =
  match String.split_on_char ' ' s with
  | [ "F"; p ] -> (
    match int_of_string_opt p with
    | Some p -> Ok (Summary.Kformal p)
    | None -> Error (Printf.sprintf "bad formal position %S" p))
  | [ "G"; name ] -> (
    match Symtab.find_st m.Ir.m_global name with
    | Some idx -> Ok (Summary.Kglobal (Ir.encode_global idx))
    | None -> Error (Printf.sprintf "unknown global array %S" name))
  | _ -> Error (Printf.sprintf "bad key %S" s)

let write_entry m buf (e : Summary.entry) =
  let r = e.Summary.e_region in
  Buffer.add_string buf
    (Printf.sprintf "entry %s ; %s ; %d ; %d ; %d ; %d ; %s\n"
       (encode_key m e.Summary.e_key)
       (Mode.to_string e.Summary.e_mode)
       e.Summary.e_count (r : Region.t).Region.ndims
       (if Region.is_exact r then 1 else 0)
       (if Region.is_clamped r then 1 else 0)
       (Lang.Iprop.flags_token (Region.assumed_flags r)));
  Buffer.add_string buf
    (Printf.sprintf "strides %s\n"
       (String.concat " "
          (List.map (fun d -> encode_stride d.Region.stride) (Region.dim_list r))));
  List.iter
    (fun c -> Buffer.add_string buf (encode_constr m c ^ "\n"))
    (System.to_list (r : Region.t).Region.sys);
  Buffer.add_string buf "endentry\n"

let write_summary m proc summary =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "proc %s\n" proc);
  List.iter (write_entry m buf) summary;
  Buffer.add_string buf "endproc\n";
  Buffer.contents buf

let write_unit m summaries =
  String.concat "" (List.map (fun (p, s) -> write_summary m p s) summaries)

let parse_unit m text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let result = ref [] in
  let current_proc = ref None in
  let current_entries = ref [] in
  (* entry being assembled *)
  let pending :
      (Summary.key
      * Mode.t
      * int
      * int
      * (bool * bool * Lang.Iprop.flags) (* exact, clamped, assumed *)
      * Region.stride list
      * Constr.t list)
      option
      ref =
    ref None
  in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let finish_entry () =
    match !pending with
    | None -> ()
    | Some (key, mode, count, ndims, (exact, clamped, assumed), strides, constrs)
      ->
      if List.length strides <> ndims then
        fail (Printf.sprintf "entry has %d strides for %d dims"
                (List.length strides) ndims)
      else begin
        let region =
          Region.make ~ndims ~sys:(System.of_list (List.rev constrs)) ~strides
            ~exact
        in
        let region = if clamped then Region.mark_clamped region else region in
        let region = Region.set_assumed assumed region in
        current_entries :=
          {
            Summary.e_key = key;
            e_mode = mode;
            e_region = region;
            e_count = count;
          }
          :: !current_entries;
        pending := None
      end
  in
  List.iter
    (fun line ->
      if !err = None then
        let line = String.trim line in
        if String.length line > 5 && String.sub line 0 5 = "proc " then begin
          current_proc := Some (String.sub line 5 (String.length line - 5));
          current_entries := []
        end
        else if line = "endproc" then begin
          match !current_proc with
          | None -> fail "endproc without proc"
          | Some p ->
            result := (p, List.rev !current_entries) :: !result;
            current_proc := None
        end
        else if String.length line > 6 && String.sub line 0 6 = "entry " then begin
          if !current_proc = None then fail "entry outside proc";
          if !pending <> None then fail "entry while another entry is open (missing endentry)";
          let body = String.sub line 6 (String.length line - 6) in
          let parse_fields key mode count ndims exact clamped props =
            (* an unparseable props token degrades the row to conservative
               MESSY (clamped, no flags) — the legacy clamped-bit rule: an
               assertion we cannot read must never strengthen an answer *)
            let clamped, assumed =
              match Lang.Iprop.flags_of_token props with
              | Some f -> (clamped, f)
              | None -> ("1", Lang.Iprop.no_flags)
            in
            match
              ( decode_key m key,
                Mode.of_string mode,
                int_of_string_opt count,
                int_of_string_opt ndims,
                exact,
                clamped )
            with
            | Ok key, Some mode, Some count, Some ndims, ("0" | "1"), ("0" | "1")
              ->
              pending :=
                Some
                  ( key,
                    mode,
                    count,
                    ndims,
                    (exact = "1", clamped = "1", assumed),
                    [],
                    [] )
            | Error e, _, _, _, _, _ -> fail e
            | _ -> fail (Printf.sprintf "bad entry line %S" line)
          in
          match String.split_on_char ';' body |> List.map String.trim with
          | [ key; mode; count; ndims; exact; clamped; props ] ->
            parse_fields key mode count ndims exact clamped props
          | [ key; mode; count; ndims; exact; clamped ] ->
            (* legacy 6-field entry predating index-array properties *)
            parse_fields key mode count ndims exact clamped "-"
          | [ key; mode; count; ndims; exact ] ->
            (* legacy 5-field entry predating clamp tracking: read it
               conservatively, as a region that cannot prove in-bounds *)
            parse_fields key mode count ndims exact "1" "-"
          | _ -> fail (Printf.sprintf "bad entry line %S" line)
        end
        else if String.length line > 8 && String.sub line 0 8 = "strides " then begin
          match !pending with
          | None -> fail "strides outside entry"
          | Some (key, mode, count, ndims, exact, _, constrs) -> (
            let parts =
              String.sub line 8 (String.length line - 8)
              |> String.split_on_char ' '
              |> List.filter (fun s -> s <> "")
            in
            let decoded = List.map decode_stride parts in
            match
              List.fold_right
                (fun d acc ->
                  match d, acc with
                  | Ok s, Ok rest -> Ok (s :: rest)
                  | Error e, _ -> Error e
                  | _, (Error _ as e) -> e)
                decoded (Ok [])
            with
            | Ok strides ->
              pending := Some (key, mode, count, ndims, exact, strides, constrs)
            | Error e -> fail e)
        end
        else if line = "endentry" then finish_entry ()
        else begin
          match !pending with
          | None -> fail (Printf.sprintf "unexpected line %S" line)
          | Some (key, mode, count, ndims, exact, strides, constrs) -> (
            match decode_constr m line with
            | Ok c ->
              pending := Some (key, mode, count, ndims, exact, strides, c :: constrs)
            | Error e -> fail e)
        end)
    lines;
  match !err with
  | Some e -> Error e
  | None ->
    if !current_proc <> None then Error "missing endproc"
    else Ok (List.rev !result)

let save ~dir ~unit_name text =
  let path = Filename.concat dir (unit_name ^ ".ipl") in
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc;
  path
