(** Serialized procedure summaries — the paper's IPL/IPA file boundary:
    "IPL (the local interprocedural analysis part) first gathers data flow
    analysis and procedure summary information from each compilation unit
    ... Then, the main IPA module gathers all the IPL summary files"
    (Section IV-A).

    One [.ipl] file holds the summaries of every procedure of one
    compilation unit, as text.  Regions serialize as their constraint
    systems; variables are written symbolically ([d0..dn] for subscript
    dimensions, [s:<proc>:<name>] for symbolic scalars, [s:@:<name>] for
    global scalars) and re-resolved against the loading module through the
    same registry the collector uses, so a summary written by one process
    translates identically in another. *)

val write_summary : Whirl.Ir.module_ -> string -> Summary.t -> string
(** [write_summary m proc summary] — one procedure's section. *)

val write_unit : Whirl.Ir.module_ -> (string * Summary.t) list -> string

val parse_unit :
  Whirl.Ir.module_ -> string -> ((string * Summary.t) list, string) result
(** Re-resolves names against the given module; fails on unknown
    procedures, arrays, or malformed constraints. *)

val save : dir:string -> unit_name:string -> string -> string
(** Writes [<dir>/<unit_name>.ipl]; returns the path. *)
