open Whirl

type suggestion = {
  sg_proc : string;
  sg_line : int;
  sg_file : string;
  sg_directive : string;
  sg_ivar : string;
}

type rejection = {
  rj_proc : string;
  rj_line : int;
  rj_arrays : string list;
}

type report = {
  rp_suggestions : suggestion list;
  rp_rejections : rejection list;
}

(* outermost DO loops of a PU: direct children of any non-loop construct *)
let outermost_loops pu =
  let loops = ref [] in
  let rec walk inside_loop (w : Wn.t) =
    match w.Wn.operator with
    | Wn.OPR_DO_LOOP ->
      if not inside_loop then loops := w :: !loops;
      walk true (Wn.kid w 4)
    | Wn.OPR_BLOCK | Wn.OPR_FUNC_ENTRY | Wn.OPR_IF | Wn.OPR_WHILE_DO ->
      Array.iter (walk inside_loop) w.Wn.kids
    | _ -> ()
  in
  walk false pu.Ir.pu_body;
  List.rev !loops

(* inner induction variables also need privatization *)
let inner_ivars m pu (loop : Wn.t) =
  let ivars = ref [] in
  Wn.preorder
    (fun w ->
      if w.Wn.operator = Wn.OPR_DO_LOOP then begin
        let name = Ir.st_name m pu (Wn.kid w 0).Wn.st_idx in
        if not (List.mem name !ivars) then ivars := name :: !ivars
      end)
    (Wn.kid loop 4);
  List.rev !ivars

(* Reduction recognition: a scalar assigned exactly once in the body, by
   "x = x op e" with op one of plus/minus/times, or "x = max/min(x, e)",
   where x is not read inside e, is an OpenMP reduction rather than a
   privatization candidate. *)
let reduction_op m pu body st =
  let stores = ref [] in
  Wn.preorder
    (fun w ->
      if w.Wn.operator = Wn.OPR_STID && w.Wn.st_idx = st then
        stores := w :: !stores)
    body;
  match !stores with
  | [ w ] -> (
    let rhs = Wn.kid w 0 in
    let reads_st e =
      Wn.count (fun n -> n.Wn.operator = Wn.OPR_LDID && n.Wn.st_idx = st) e
    in
    let is_self e = e.Wn.operator = Wn.OPR_LDID && e.Wn.st_idx = st in
    ignore (Ir.st_name m pu st);
    match rhs.Wn.operator with
    | Wn.OPR_ADD when is_self (Wn.kid rhs 0) && reads_st (Wn.kid rhs 1) = 0 ->
      Some "+"
    | Wn.OPR_ADD when is_self (Wn.kid rhs 1) && reads_st (Wn.kid rhs 0) = 0 ->
      Some "+"
    | Wn.OPR_SUB when is_self (Wn.kid rhs 0) && reads_st (Wn.kid rhs 1) = 0 ->
      Some "-"
    | Wn.OPR_MPY when is_self (Wn.kid rhs 0) && reads_st (Wn.kid rhs 1) = 0 ->
      Some "*"
    | Wn.OPR_MPY when is_self (Wn.kid rhs 1) && reads_st (Wn.kid rhs 0) = 0 ->
      Some "*"
    | Wn.OPR_INTRINSIC_OP
      when (rhs.Wn.str_val = "max" || rhs.Wn.str_val = "min")
           && Wn.kid_count rhs = 2
           && (is_self (Wn.kid rhs 0) || is_self (Wn.kid rhs 1)) ->
      Some rhs.Wn.str_val
    | _ -> None)
  | _ -> None

let directive_for lang ~ivar ~privates ~reductions =
  let privates =
    List.filter (fun p -> p <> ivar) privates |> List.sort_uniq String.compare
  in
  let clauses =
    (if privates = [] then []
     else [ Printf.sprintf "private(%s)" (String.concat ", " privates) ])
    @ List.map
        (fun (op, name) -> Printf.sprintf "reduction(%s:%s)" op name)
        reductions
  in
  let tail = if clauses = [] then "" else " " ^ String.concat " " clauses in
  match lang with
  | Lang.Ast.Fortran -> "!$omp parallel do" ^ tail
  | Lang.Ast.C -> "#pragma omp parallel for" ^ tail

let plan (m : Ir.module_) summaries =
  let suggestions = ref [] and rejections = ref [] in
  List.iter
    (fun pu ->
      List.iter
        (fun loop ->
          let verdict = Parallel.loop_parallel m summaries pu loop in
          let line = Lang.Loc.line loop.Wn.linenum in
          if verdict.Parallel.lv_parallel then begin
            let ivar = Ir.st_name m pu (Wn.kid loop 0).Wn.st_idx in
            let body = Wn.kid loop 4 in
            (* split written scalars into reductions and privates *)
            let reductions = ref [] and privates = ref (inner_ivars m pu loop) in
            List.iter
              (fun st ->
                if st <> (Wn.kid loop 0).Wn.st_idx then
                  let name = Ir.st_name m pu st in
                  match reduction_op m pu body st with
                  | Some op -> reductions := (op, name) :: !reductions
                  | None ->
                    if not (List.mem name !privates) then
                      privates := !privates @ [ name ])
              (Collect.scalar_defs m pu body);
            suggestions :=
              {
                sg_proc = pu.Ir.pu_name;
                sg_line = line;
                sg_file = pu.Ir.pu_file;
                sg_directive =
                  directive_for pu.Ir.pu_lang ~ivar ~privates:!privates
                    ~reductions:(List.rev !reductions);
                sg_ivar = ivar;
              }
              :: !suggestions
          end
          else
            rejections :=
              {
                rj_proc = pu.Ir.pu_name;
                rj_line = line;
                rj_arrays =
                  List.map
                    (fun c -> c.Parallel.c_array)
                    verdict.Parallel.lv_conflicts
                  |> List.sort_uniq String.compare;
              }
              :: !rejections)
        (outermost_loops pu))
    m.Ir.m_pus;
  {
    rp_suggestions = List.rev !suggestions;
    rp_rejections = List.rev !rejections;
  }

let indentation line =
  let n = String.length line in
  let rec go i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then go (i + 1) else i in
  String.sub line 0 (go 0)

let annotate report ~file text =
  let lines = String.split_on_char '\n' text in
  let for_file =
    List.filter (fun s -> Filename.basename s.sg_file = Filename.basename file)
      report.rp_suggestions
  in
  let buf = Buffer.create (String.length text + 256) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      List.iter
        (fun s ->
          if s.sg_line = lineno then begin
            Buffer.add_string buf (indentation line);
            Buffer.add_string buf s.sg_directive;
            Buffer.add_char buf '\n'
          end)
        for_file;
      Buffer.add_string buf line;
      if lineno < List.length lines then Buffer.add_char buf '\n')
    lines;
  Buffer.contents buf

let render report =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%d parallelizable outermost loop(s), %d rejected\n"
       (List.length report.rp_suggestions)
       (List.length report.rp_rejections));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %s:%d (%s, ivar %s): %s\n" s.sg_file s.sg_line
           s.sg_proc s.sg_ivar s.sg_directive))
    report.rp_suggestions;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %s line %d: NOT parallel (conflicts on %s)\n"
           r.rj_proc r.rj_line
           (String.concat ", " r.rj_arrays)))
    report.rp_rejections;
  Buffer.contents buf
