(** Parallelism detection from region summaries — the paper's third use
    case ("Auto-parallelization ... Compiler inter-procedural analysis of
    side effects; visual feedback on procedures that can be executed in
    parallel").

    Two tests are provided:

    - {!sites_independent}: can two call statements run concurrently?
      (Fig 1: [call P1(A,j)] DEFs A(1:100,1:100) while [call P2(A,j)] USEs
      A(101:200,101:200) — disjoint, so both can be parallelized.)
      Sound: Bernstein's conditions over convex over-approximations.
    - {!loop_parallel}: can a DO loop's iterations run concurrently?
      Compares the regions of iterations [i] and [i'] with [i < i'] added
      to the system; scalar stores inside the body are reported as
      privatization candidates rather than silently ignored. *)

type conflict = {
  c_array : string;
  c_mode1 : Regions.Mode.t;
  c_mode2 : Regions.Mode.t;
  c_region1 : Regions.Region.t;
  c_region2 : Regions.Region.t;
}

type effects = (int * Regions.Mode.t * Regions.Region.t) list
(** (st code, USE|DEF, region) *)

val site_effects :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  caller:Whirl.Ir.pu ->
  Collect.site ->
  effects
(** The callee's summarized side effects translated at the call site. *)

val sites_independent :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  caller:Whirl.Ir.pu ->
  Collect.site ->
  Collect.site ->
  conflict list
(** Empty list = provably independent (Bernstein over regions). *)

type loop_verdict = {
  lv_parallel : bool;  (** no cross-iteration array conflict *)
  lv_conflicts : conflict list;
  lv_private_scalars : string list;
      (** scalars written in the body: must be privatized (the induction
          variable itself is excluded) *)
}

val loop_parallel :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  Whirl.Ir.pu ->
  Whirl.Wn.t ->
  loop_verdict
(** The WN must be an [OPR_DO_LOOP].  Calls inside the body make the
    verdict conservative ([lv_parallel = false] with a whole-array
    conflict) unless their effects are absent. *)
