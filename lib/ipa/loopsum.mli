(** Loop-level access summaries — the paper's granularity claim: "an
    interprocedural analysis technique to summarize array accesses at both
    loop-level and statement level" (Section I).

    The per-reference rows of the [.rgn] table are the statement level;
    this module aggregates them per DO loop: for every loop of a procedure,
    the union (convex over-approximation) of each array's USE/DEF regions
    inside the loop — including effects of calls in the body.  This is what
    the Case 2 workflow consumes: "one loop in rhs.f accesses regions
    (1:3,1:5,1:10,1:4) of u" is exactly a loop-level summary. *)

type entry = {
  le_array : string;
  le_mode : Regions.Mode.t;
  le_region : Regions.Region.t;
  le_refs : int;  (** reference sites inside the loop *)
}

type loop_summary = {
  ls_proc : string;
  ls_line : int;        (** the DO statement's source line *)
  ls_ivar : string;
  ls_depth : int;       (** 0 = outermost *)
  ls_entries : entry list;
}

val of_pu :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  Whirl.Ir.pu ->
  loop_summary list
(** Every loop of the PU, outermost first (preorder). *)

val of_module :
  Whirl.Ir.module_ -> (string * Summary.t) list -> loop_summary list

val copyin_bytes : loop_summary -> (string * int) list
(** Per USEd array: bytes a bounding-box [copyin] before this loop moves
    (constant regions only) — the Case 2 decision input. *)

val render : Whirl.Ir.module_ -> Whirl.Ir.pu -> loop_summary list -> string
