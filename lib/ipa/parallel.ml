open Whirl
open Regions
open Linear

type conflict = {
  c_array : string;
  c_mode1 : Mode.t;
  c_mode2 : Mode.t;
  c_region1 : Region.t;
  c_region2 : Region.t;
}

type effects = (int * Mode.t * Region.t) list

let site_effects m summaries ~caller (site : Collect.site) : effects =
  match Ir.find_pu m site.Collect.s_callee with
  | None -> []
  | Some callee_pu ->
    let summary =
      match List.assoc_opt site.Collect.s_callee summaries with
      | Some s -> s
      | None -> Summary.opaque m callee_pu
    in
    Summary.translate m ~caller ~callee:callee_pu ~site summary
    |> List.map (fun (t : Summary.translated) ->
           (t.Summary.t_st, t.Summary.t_mode, t.Summary.t_region))

let involves_def m1 m2 =
  Mode.equal m1 Mode.DEF || Mode.equal m2 Mode.DEF

let conflicts_between m pu (e1 : effects) (e2 : effects) =
  List.concat_map
    (fun (st1, m1, r1) ->
      List.filter_map
        (fun (st2, m2, r2) ->
          if st1 = st2 && involves_def m1 m2 && Region.intersects r1 r2 then
            Some
              {
                c_array = Ir.st_name m pu st1;
                c_mode1 = m1;
                c_mode2 = m2;
                c_region1 = r1;
                c_region2 = r2;
              }
          else None)
        e2)
    e1

let sites_independent m summaries ~caller s1 s2 =
  let e1 = site_effects m summaries ~caller s1 in
  let e2 = site_effects m summaries ~caller s2 in
  conflicts_between m caller e1 e2

(* ------------------------------------------------------------------ *)

type loop_verdict = {
  lv_parallel : bool;
  lv_conflicts : conflict list;
  lv_private_scalars : string list;
}

(* feasibility of "iterations i and i' (i < i') touch a common element" *)
let cross_iteration_conflict loop_bounds_constraints v v' r1 r2 =
  let r2' = Region.subst_sym [ (v, Expr.var v') ] r2 in
  let sys =
    System.meet (r1 : Region.t).Region.sys (r2' : Region.t).Region.sys
  in
  let sys = System.meet sys loop_bounds_constraints in
  let sys =
    System.add
      (Constr.le
         (Expr.add_const Numeric.Rat.one (Expr.var v))
         (Expr.var v'))
      sys
  in
  System.feasible sys

let loop_parallel m summaries pu (w : Wn.t) =
  if w.Wn.operator <> Wn.OPR_DO_LOOP then
    invalid_arg "Parallel.loop_parallel: not a DO_LOOP";
  let ivar_st = (Wn.kid w 0).Wn.st_idx in
  let ivar_name = Ir.st_name m pu ivar_st in
  let v = Collect.sym_var ~m ~pu:pu.Ir.pu_name ~st:ivar_st ~name:ivar_name in
  let v' = Var.fresh ~name:(ivar_name ^ "'") Var.Sym in
  let body = Wn.kid w 4 in
  let info = Collect.run_body m pu body in
  (* direct accesses plus translated callee effects *)
  let direct =
    List.filter_map
      (fun (a : Collect.access) ->
        match a.Collect.ac_mode with
        | Mode.USE | Mode.DEF ->
          Some (a.Collect.ac_st, a.Collect.ac_mode, a.Collect.ac_region)
        | Mode.FORMAL | Mode.PASSED | Mode.RUSE | Mode.RDEF -> None)
      info.Collect.p_accesses
  in
  let from_calls =
    List.concat_map
      (fun site -> site_effects m summaries ~caller:pu site)
      info.Collect.p_sites
  in
  let all = direct @ from_calls in
  (* direction-aware bounds of the two iteration variables *)
  let bounds =
    System.of_list
      (Collect.loop_bounds_for m pu w v @ Collect.loop_bounds_for m pu w v')
  in
  let conflicts = ref [] in
  List.iter
    (fun (st1, m1, r1) ->
      List.iter
        (fun (st2, m2, r2) ->
          if st1 = st2 && involves_def m1 m2 then
            if cross_iteration_conflict bounds v v' r1 r2 then
              conflicts :=
                {
                  c_array = Ir.st_name m pu st1;
                  c_mode1 = m1;
                  c_mode2 = m2;
                  c_region1 = r1;
                  c_region2 = r2;
                }
                :: !conflicts)
        all)
    all;
  let private_scalars =
    Collect.scalar_defs m pu body
    |> List.filter (fun st -> st <> ivar_st)
    |> List.map (fun st -> Ir.st_name m pu st)
  in
  {
    lv_parallel = !conflicts = [];
    lv_conflicts = List.rev !conflicts;
    lv_private_scalars = private_scalars;
  }
