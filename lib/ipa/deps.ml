open Whirl
open Regions
open Linear

type kind = Flow | Anti | Output

type t = {
  dep_array : string;
  dep_kind : kind;
  dep_carried : bool;
}

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"

let kind_of m1 m2 =
  match m1, m2 with
  | Mode.DEF, Mode.DEF -> Some Output
  | Mode.DEF, Mode.USE -> Some Flow
  | Mode.USE, Mode.DEF -> Some Anti
  | _ -> None

(* direction-aware bound constraints (handles negative steps soundly) *)
let bound_constraints m pu (loop : Wn.t) var = Collect.loop_bounds_for m pu loop var

let ivar_sym m pu (loop : Wn.t) =
  let st = (Wn.kid loop 0).Wn.st_idx in
  Collect.sym_var ~m ~pu:pu.Ir.pu_name ~st ~name:(Ir.st_name m pu st)

let body_effects m summaries pu (wn : Wn.t) =
  let info = Collect.run_body m pu wn in
  let direct =
    List.filter_map
      (fun (a : Collect.access) ->
        match a.Collect.ac_mode with
        | Mode.USE | Mode.DEF ->
          Some (a.Collect.ac_st, a.Collect.ac_mode, a.Collect.ac_region)
        | Mode.FORMAL | Mode.PASSED | Mode.RUSE | Mode.RDEF -> None)
      info.Collect.p_accesses
  in
  let from_calls =
    List.concat_map
      (fun site -> Parallel.site_effects m summaries ~caller:pu site)
      info.Collect.p_sites
  in
  direct @ from_calls

(* [base] is the loop-bounds system, built once per dependence question and
   reused across every access pair (it used to be re-normalized from the raw
   constraint list inside each pair).  Grouping does not change the meet's
   normalized form, so answers are unaffected. *)
let feasible_with base extras r1 r2' =
  let sys =
    System.meet (r1 : Region.t).Region.sys (r2' : Region.t).Region.sys
  in
  let sys = System.meet sys base in
  let sys = List.fold_left (fun s c -> System.add c s) sys extras in
  System.feasible sys

let loop_dependences m summaries pu (loop : Wn.t) =
  if loop.Wn.operator <> Wn.OPR_DO_LOOP then
    invalid_arg "Deps.loop_dependences: not a DO_LOOP";
  let v = ivar_sym m pu loop in
  let v' = Var.fresh ~name:(Var.name v ^ "'") Var.Sym in
  let bounds =
    System.of_list
      (bound_constraints m pu loop v @ bound_constraints m pu loop v')
  in
  let effects = body_effects m summaries pu (Wn.kid loop 4) in
  let deps = ref [] in
  List.iter
    (fun (st1, m1, r1) ->
      List.iter
        (fun (st2, m2, r2) ->
          if st1 = st2 then
            match kind_of m1 m2 with
            | None -> ()
            | Some k ->
              let r2' = Region.subst_sym [ (v, Expr.var v') ] r2 in
              let carried =
                feasible_with bounds
                  [
                    Constr.le
                      (Expr.add_const Numeric.Rat.one (Expr.var v))
                      (Expr.var v');
                  ]
                  r1 r2'
              in
              let same_iter =
                feasible_with bounds
                  [ Constr.eq (Expr.var v) (Expr.var v') ]
                  r1 r2'
              in
              if carried || same_iter then
                deps :=
                  {
                    dep_array = Ir.st_name m pu st1;
                    dep_kind = k;
                    dep_carried = carried;
                  }
                  :: !deps)
        effects)
    effects;
  (* deduplicate *)
  List.sort_uniq compare (List.rev !deps)

let fusion_preventing m summaries pu ~first ~second =
  if first.Wn.operator <> Wn.OPR_DO_LOOP || second.Wn.operator <> Wn.OPR_DO_LOOP
  then invalid_arg "Deps.fusion_preventing: not DO_LOOPs";
  let v1 = ivar_sym m pu first in
  let v2 = ivar_sym m pu second in
  let v = Var.fresh ~name:"fi" Var.Sym in
  let v' = Var.fresh ~name:"fi'" Var.Sym in
  let e1 =
    body_effects m summaries pu (Wn.kid first 4)
    |> List.map (fun (st, md, r) -> (st, md, Region.subst_sym [ (v1, Expr.var v) ] r))
  in
  let e2 =
    body_effects m summaries pu (Wn.kid second 4)
    |> List.map (fun (st, md, r) -> (st, md, Region.subst_sym [ (v2, Expr.var v') ] r))
  in
  let bounds =
    System.of_list
      (bound_constraints m pu first v @ bound_constraints m pu second v')
  in
  (* fusion is illegal if the second loop's iteration i' would, after
     fusion, run before a first-loop iteration i > i' that it depends on *)
  let backward =
    Constr.le (Expr.add_const Numeric.Rat.one (Expr.var v')) (Expr.var v)
  in
  let offenders = ref [] in
  List.iter
    (fun (st1, m1, r1) ->
      List.iter
        (fun (st2, m2, r2') ->
          if st1 = st2 && kind_of m1 m2 <> None then
            if feasible_with bounds [ backward ] r1 r2' then begin
              let name = Ir.st_name m pu st1 in
              if not (List.mem name !offenders) then
                offenders := name :: !offenders
            end)
        e2)
    e1;
  List.rev !offenders

let interchange_preventing m summaries pu ~outer ~inner =
  if outer.Wn.operator <> Wn.OPR_DO_LOOP || inner.Wn.operator <> Wn.OPR_DO_LOOP
  then invalid_arg "Deps.interchange_preventing: not DO_LOOPs";
  let vi = ivar_sym m pu outer and vj = ivar_sym m pu inner in
  let vi' = Var.fresh ~name:(Var.name vi ^ "'") Var.Sym in
  let vj' = Var.fresh ~name:(Var.name vj ^ "'") Var.Sym in
  let effects = body_effects m summaries pu (Wn.kid inner 4) in
  let bounds =
    System.of_list
      (bound_constraints m pu outer vi
      @ bound_constraints m pu outer vi'
      @ bound_constraints m pu inner vj
      @ bound_constraints m pu inner vj')
  in
  (* a (<, >) direction vector *)
  let direction =
    [
      Constr.le (Expr.add_const Numeric.Rat.one (Expr.var vi)) (Expr.var vi');
      Constr.le (Expr.add_const Numeric.Rat.one (Expr.var vj')) (Expr.var vj);
    ]
  in
  let offenders = ref [] in
  List.iter
    (fun (st1, m1, r1) ->
      List.iter
        (fun (st2, m2, r2) ->
          if st1 = st2 && kind_of m1 m2 <> None then begin
            let r2' =
              Region.subst_sym [ (vi, Expr.var vi'); (vj, Expr.var vj') ] r2
            in
            if feasible_with bounds direction r1 r2' then begin
              let name = Ir.st_name m pu st1 in
              if not (List.mem name !offenders) then
                offenders := name :: !offenders
            end
          end)
        effects)
    effects;
  List.rev !offenders
