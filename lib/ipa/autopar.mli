(** Auto-parallelization — the paper's third functionality ("We provide an
    approach to detect and exploit parallelism in Fortran 77/90, C, and C++
    programs ... Compiler inter-procedural analysis of side effects; visual
    feedback on procedures that can be executed in parallel"), playing the
    role of the MIPSpro APO module the paper describes, including the case
    APO cannot handle: "function calls inside loops can not be handled by
    this module.  Our tool can assist as a continuation and broadening to
    this module" — calls inside loops are summarized through the
    interprocedural region summaries.

    For every outermost DO loop of every procedure, {!plan} runs the
    {!Parallel.loop_parallel} test; parallelizable loops get a synthesized
    OpenMP directive (private clause from the scalars written in the body),
    and {!annotate} splices the directives into the source text the way the
    paper's user would after reading the table. *)

type suggestion = {
  sg_proc : string;
  sg_line : int;           (** source line of the DO statement *)
  sg_file : string;
  sg_directive : string;   (** e.g. "!$omp parallel do private(j, tmp)" *)
  sg_ivar : string;
}

type rejection = {
  rj_proc : string;
  rj_line : int;
  rj_arrays : string list;  (** conflicting arrays *)
}

type report = {
  rp_suggestions : suggestion list;
  rp_rejections : rejection list;
}

val plan :
  Whirl.Ir.module_ -> (string * Summary.t) list -> report
(** Outermost loops only (nested parallelism is not suggested). *)

val annotate : report -> file:string -> string -> string
(** Inserts each suggestion's directive line (with matching indentation)
    before the DO statement in the given source text; returns the annotated
    text.  C files get "#pragma omp parallel for" spelling. *)

val render : report -> string
