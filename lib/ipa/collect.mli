(** IPL — the local information-gathering phase (paper, Section IV-A: "IPL
    first gathers data flow analysis and procedure summary information from
    each compilation unit, and the information is summarized for each
    procedure").

    Walks each PU's WHIRL tree once (Algorithm 1's inner loop), maintaining
    the enclosing-loop context, and produces:

    - one access record per array reference ([ILOAD]/[ISTORE] of an [ARRAY],
      whole-array [LDA] uses) with its projected region;
    - one FORMAL record per formal array;
    - one PASSED record per array argument at each call site;
    - a call-site descriptor per [OPR_CALL] for the IPA translation phase. *)

type access = {
  ac_st : int;  (** WN st code (local, or global-encoded) *)
  ac_mode : Regions.Mode.t;
  ac_region : Regions.Region.t;
  ac_loc : Lang.Loc.t;
  ac_via : string option;
      (** [Some callee] when the record was propagated from a call *)
  ac_sparse : string option;
      (** [Some idx] when some subscript reads through index array [idx]
          (the runtime-inspector label for accesses that stay undecidable) *)
}

type callsite_arg =
  | Arg_array_whole of int
  | Arg_array_elem of int * Regions.Affine.result list
      (** zero-based row-major element coordinates *)
  | Arg_scalar_ref of int
  | Arg_value of Regions.Affine.result

type site = {
  s_callee : string;
  s_args : callsite_arg list;
  s_loops : (int * Regions.Region.loop_ctx) list;
      (** loops enclosing the call, innermost first, with the induction
          variable's st code *)
  s_loc : Lang.Loc.t;
}

type pu_info = {
  p_pu : Whirl.Ir.pu;
  p_accesses : access list;
  p_sites : site list;
}

val sym_var :
  m:Whirl.Ir.module_ -> pu:string -> st:int -> name:string -> Linear.Var.t
(** The stable symbolic variable standing for a scalar; global-encoded
    symbols share one variable across all procedures of the module.  Keyed
    by the module id, so independently analyzed modules never share
    variables. *)

val sym_info : Linear.Var.t -> (string * int) option
(** Inverse of {!sym_var}: the (procedure, st) a symbolic variable stands
    for; the procedure is [""] for globals.  [None] for variables that were
    not created through the registry. *)

val extents_of : Whirl.Ir.module_ -> Whirl.Ir.pu -> int -> int option list
(** Row-major declared extents of an array symbol ([None] per unknown
    dimension). *)

val intern_module_syms : Whirl.Ir.module_ -> unit
(** Pre-register the symbolic variables of every scalar symbol of the
    module (globals first, then per-PU locals, in table order).  The engine
    calls this before fanning {!run_pu} out across domains so that symbolic
    variable ids are independent of the parallel schedule — which is what
    makes parallel output byte-identical to serial output. *)

val run : Whirl.Ir.module_ -> pu_info list

val run_pu : Whirl.Ir.module_ -> Whirl.Ir.pu -> pu_info
(** Collection for a single PU (one unit of the engine's parallel work
    queue).  Only touches shared state through the guarded symbolic-variable
    registry. *)

val run_body : Whirl.Ir.module_ -> Whirl.Ir.pu -> Whirl.Wn.t -> pu_info
(** Walks one statement subtree with an empty loop context: enclosing
    induction variables are treated as symbolic scalars, so the returned
    regions keep them free.  Used by the loop-parallelism test, which wants
    to compare iterations [i] and [i'] of the same loop. *)

val scalar_defs : Whirl.Ir.module_ -> Whirl.Ir.pu -> Whirl.Wn.t -> int list
(** st codes of scalars stored to ([STID]) anywhere in the subtree —
    potential privatization/reduction candidates for the parallelizer. *)

val loop_bounds_for :
  Whirl.Ir.module_ ->
  Whirl.Ir.pu ->
  Whirl.Wn.t ->
  Linear.Var.t ->
  Linear.Constr.t list
(** Direction-aware bound constraints of a DO loop header on the given
    variable: for a positive step, [lo <= v <= hi]; for a negative step the
    roles swap; with an unknown step sign only constant bounds are used (as
    [min <= v <= max]), otherwise nothing — always a sound over-approximation
    of the iteration space.  The dependence tests rely on this: treating a
    downward loop as [lo <= v <= hi] would make its iteration space empty
    and every dependence vacuously absent. *)
