open Whirl
open Regions

type key =
  | Kglobal of int
  | Kformal of int

type entry = {
  e_key : key;
  e_mode : Mode.t;
  e_region : Region.t;
  e_count : int;
}

type t = entry list

let max_regions_per_key = 8

let same_slot a b = a.e_key = b.e_key && Mode.equal a.e_mode b.e_mode

let add_entry summary entry =
  (* merge display-equal regions in the same slot *)
  let merged = ref false in
  let summary =
    List.map
      (fun e ->
        if
          (not !merged) && same_slot e entry
          && Region.equal_display e.e_region entry.e_region
        then begin
          merged := true;
          { e with e_count = e.e_count + entry.e_count }
        end
        else e)
      summary
  in
  if !merged then summary
  else begin
    let slot = List.filter (same_slot entry) summary in
    if List.length slot < max_regions_per_key then summary @ [ entry ]
    else begin
      (* cap reached: collapse the slot into one approximated union *)
      let rest = List.filter (fun e -> not (same_slot e entry)) summary in
      let union =
        List.fold_left
          (fun acc e -> Region.union_approx acc e.e_region)
          entry.e_region slot
      in
      let count =
        List.fold_left (fun acc e -> acc + e.e_count) entry.e_count slot
      in
      rest @ [ { entry with e_region = union; e_count = count } ]
    end
  end

(* Bucketed construction: the same summary [add_entry] builds, without the
   O(n) whole-list scan per insertion.  Entries live in a growable array in
   insertion order (a [None] is a tombstone left by a cap collapse); a
   hashtable maps each (key, mode) slot to its live indices in increasing
   order.  "First display-equal entry in the list" is then "first
   display-equal index in the bucket", and a cap collapse tombstones the
   bucket and appends the merged entry at the end — the exact positions
   [add_entry] produces. *)
module Builder = struct
  type b = {
    mutable arr : entry option array;
    mutable len : int;
    index : (key * Mode.t, int list) Hashtbl.t;
  }

  let create () =
    { arr = Array.make 16 None; len = 0; index = Hashtbl.create 16 }

  let push b entry =
    if b.len = Array.length b.arr then begin
      let arr' = Array.make (2 * b.len) None in
      Array.blit b.arr 0 arr' 0 b.len;
      b.arr <- arr'
    end;
    let i = b.len in
    b.arr.(i) <- Some entry;
    b.len <- b.len + 1;
    i

  let add b entry =
    let k = (entry.e_key, entry.e_mode) in
    let idxs = try Hashtbl.find b.index k with Not_found -> [] in
    let rec try_merge = function
      | [] -> false
      | i :: rest -> (
        match b.arr.(i) with
        | Some e when Region.equal_display e.e_region entry.e_region ->
          b.arr.(i) <- Some { e with e_count = e.e_count + entry.e_count };
          true
        | _ -> try_merge rest)
    in
    if try_merge idxs then ()
    else if List.length idxs < max_regions_per_key then begin
      let i = push b entry in
      Hashtbl.replace b.index k (idxs @ [ i ])
    end
    else begin
      let slot = List.filter_map (fun i -> b.arr.(i)) idxs in
      let union =
        Region.union_many (entry.e_region :: List.map (fun e -> e.e_region) slot)
      in
      let count =
        List.fold_left (fun acc e -> acc + e.e_count) entry.e_count slot
      in
      List.iter (fun i -> b.arr.(i) <- None) idxs;
      let i = push b { entry with e_region = union; e_count = count } in
      Hashtbl.replace b.index k [ i ]
    end

  (* A well-formed summary replays through [add] as pure appends (slots are
     display-distinct and within the cap), so this is the identity on the
     entry list — it just rebuilds the bucket index. *)
  let of_summary (s : t) =
    let b = create () in
    List.iter (add b) s;
    b

  let to_summary b =
    let out = ref [] in
    for i = b.len - 1 downto 0 do
      match b.arr.(i) with Some e -> out := e :: !out | None -> ()
    done;
    !out
end

let add_entries summary entries =
  if Region.fast_join_enabled () then begin
    let b = Builder.of_summary summary in
    List.iter (Builder.add b) entries;
    Builder.to_summary b
  end
  else List.fold_left add_entry summary entries

let formal_position pu st =
  let rec go i = function
    | [] -> None
    | f :: rest -> if f = st then Some i else go (i + 1) rest
  in
  if Ir.is_global_idx st then None else go 0 pu.Ir.pu_formals

let of_local m pu accesses =
  ignore m;
  let entries =
    List.filter_map
      (fun (a : Collect.access) ->
        match a.Collect.ac_mode with
        | Mode.FORMAL | Mode.PASSED -> None
        | Mode.RUSE | Mode.RDEF ->
          (* remote accesses target another image's copy: they are displayed
             per-procedure but do not contribute to local side effects *)
          None
        | (Mode.USE | Mode.DEF) as mode ->
          let key =
            if Ir.is_global_idx a.Collect.ac_st then
              Some (Kglobal a.Collect.ac_st)
            else
              match formal_position pu a.Collect.ac_st with
              | Some p -> Some (Kformal p)
              | None -> None (* locals do not escape *)
          in
          Option.map
            (fun e_key ->
              { e_key; e_mode = mode; e_region = a.Collect.ac_region; e_count = 1 })
            key)
      accesses
  in
  add_entries [] entries

let opaque m pu =
  let entries = ref [] in
  (* all global arrays *)
  Symtab.iter_st m.Ir.m_global (fun idx st_entry ->
      match Symtab.ty m.Ir.m_global st_entry.Symtab.st_ty with
      | Symtab.Ty_array _ ->
        let code = Ir.encode_global idx in
        let region =
          (* worst-case: the callee's real accesses are unknown, so the
             whole-extent fallback is a clamp, not a proof of in-bounds *)
          Region.mark_clamped
            (Region.whole ~extents:(Collect.extents_of m pu code))
        in
        entries :=
          { e_key = Kglobal code; e_mode = Mode.USE; e_region = region; e_count = 1 }
          :: { e_key = Kglobal code; e_mode = Mode.DEF; e_region = region; e_count = 1 }
          :: !entries
      | Symtab.Ty_scalar _ -> ());
  (* all formal arrays *)
  List.iteri
    (fun p idx ->
      let st_entry = Symtab.st pu.Ir.pu_symtab idx in
      match Symtab.ty pu.Ir.pu_symtab st_entry.Symtab.st_ty with
      | Symtab.Ty_array _ ->
        let region =
          Region.mark_clamped
            (Region.whole ~extents:(Collect.extents_of m pu idx))
        in
        entries :=
          { e_key = Kformal p; e_mode = Mode.USE; e_region = region; e_count = 1 }
          :: { e_key = Kformal p; e_mode = Mode.DEF; e_region = region; e_count = 1 }
          :: !entries
      | Symtab.Ty_scalar _ -> ())
    pu.Ir.pu_formals;
  !entries

type translated = {
  t_st : int;
  t_mode : Mode.t;
  t_region : Region.t;
  t_count : int;
}

(* Substitution for the callee's symbolic formal scalars. *)
let scalar_substitution m ~caller ~callee ~(site : Collect.site) =
  let subst = ref [] in
  List.iteri
    (fun p formal_st ->
      match List.nth_opt site.Collect.s_args p with
      | None -> ()
      | Some arg ->
        let formal_entry = Symtab.st callee.Ir.pu_symtab formal_st in
        (match Symtab.ty callee.Ir.pu_symtab formal_entry.Symtab.st_ty with
        | Symtab.Ty_scalar _ -> (
          let formal_var =
            Collect.sym_var ~m ~pu:callee.Ir.pu_name ~st:formal_st
              ~name:formal_entry.Symtab.st_name
          in
          match arg with
          | Collect.Arg_value (Affine.Affine e) ->
            subst := (formal_var, e) :: !subst
          | Collect.Arg_scalar_ref st' ->
            (* an active caller loop variable, or a caller symbolic scalar *)
            let e =
              match List.assoc_opt st' site.Collect.s_loops with
              | Some lc -> Linear.Expr.var lc.Region.lc_var
              | None ->
                let name = Ir.st_name m caller st' in
                Linear.Expr.var
                  (Collect.sym_var ~m ~pu:caller.Ir.pu_name ~st:st' ~name)
            in
            subst := (formal_var, e) :: !subst
          | _ -> ())
        | Symtab.Ty_array _ -> ()))
    callee.Ir.pu_formals;
  !subst

let translate m ~caller ~callee ~site summary =
  let subst = scalar_substitution m ~caller ~callee ~site in
  List.filter_map
    (fun e ->
      (* the target array on the caller side *)
      let target =
        match e.e_key with
        | Kglobal g -> Some (g, `Exact)
        | Kformal p -> (
          match List.nth_opt site.Collect.s_args p with
          | Some (Collect.Arg_array_whole st') -> Some (st', `Exact)
          | Some (Collect.Arg_array_elem (st', _)) -> Some (st', `Whole)
          | _ -> None)
      in
      match target with
      | None -> None
      | Some (st', how) ->
        let region =
          match how with
          | `Whole ->
            (* element passing re-bases the callee's view of the array
               (Fortran sequence association): fall back to the whole
               actual array, flagged approximate *)
            Region.mark_clamped
              (Region.approximate
                 (Region.whole ~extents:(Collect.extents_of m caller st')))
          | `Exact ->
            let callee_ndims = (e.e_region : Region.t).Region.ndims in
            let caller_ndims = List.length (Collect.extents_of m caller st') in
            if callee_ndims <> caller_ndims then
              Region.mark_clamped
                (Region.approximate
                   (Region.whole ~extents:(Collect.extents_of m caller st')))
            else
              e.e_region
              |> Region.subst_sym subst
              |> Region.close_under_loops (List.map snd site.Collect.s_loops)
        in
        Some { t_st = st'; t_mode = e.e_mode; t_region = region; t_count = e.e_count })
    summary

let pp m pu ppf (t : t) =
  List.iter
    (fun e ->
      let name =
        match e.e_key with
        | Kglobal g -> Ir.st_name m pu g
        | Kformal p -> Printf.sprintf "formal#%d" p
      in
      Format.fprintf ppf "%s %s %a x%d@," name
        (Mode.to_string e.e_mode)
        Region.pp e.e_region e.e_count)
    t
