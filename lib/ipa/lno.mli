(** A small Loop Nest Optimizer: the consumer phase the paper places right
    after IPA ("The compiler starts with the Loop Nest Optimizer (LNO)
    where several code transformations and optimizations are occured,
    depending on the analysis gathered at the IPA phase", Section IV-A).

    Two region-analysis-driven transformations are provided, each with its
    legality test from {!Deps}:

    - {!fuse_pu}: merge adjacent DO loops with identical headers when no
      fusion-preventing dependence exists — the transformation the paper's
      Case 1 performs by hand on verify's XCR loops;
    - {!interchange}: swap a perfect 2-nest when no (<, >) dependence
      exists — the classic locality transformation the tool's feedback
      ("Identify transformations ... to improve locality") suggests. *)

val headers_compatible : Whirl.Wn.t -> Whirl.Wn.t -> bool
(** Same induction variable and structurally equal bounds and step. *)

val fuse : Whirl.Wn.t -> Whirl.Wn.t -> Whirl.Wn.t
(** Merge the bodies under the first loop's header (no legality check).
    @raise Invalid_argument when headers are incompatible. *)

val fuse_pu :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  Whirl.Ir.pu ->
  Whirl.Ir.pu * int
(** Repeatedly fuses adjacent compatible, dependence-legal loop pairs in
    every block; returns the transformed PU and the number of fusions. *)

val is_perfect_nest : Whirl.Wn.t -> Whirl.Wn.t option
(** [Some inner] when the DO loop's body consists of exactly one DO loop. *)

val interchange : Whirl.Wn.t -> Whirl.Wn.t
(** Swap the two loops of a perfect 2-nest (no legality check).
    @raise Invalid_argument when the argument is not a perfect nest. *)

type locality_suggestion = {
  loc_proc : string;
  loc_line : int;
  loc_outer : string;
  loc_inner : string;
  loc_bad_refs : int;   (** references whose fastest-varying subscript is the
                            outer loop variable *)
  loc_good_refs : int;
  loc_legal : bool;     (** interchange passes the dependence test *)
}

val locality_suggestions :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  Whirl.Ir.pu ->
  locality_suggestion list
(** Perfect 2-nests whose references mostly vary their {e last} (fastest,
    contiguous) internal dimension with the outer induction variable —
    i.e. the nest walks the arrays with a large stride.  Interchanging such
    a nest is the locality transformation of the paper's first use case
    ("Identify transformations based on Dragon feedback to improve locality
    and reduce cache misses"). *)

val interchange_pu :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  Whirl.Ir.pu ->
  want:(outer_ivar:string -> inner_ivar:string -> bool) ->
  Whirl.Ir.pu * int
(** Interchanges every legal perfect 2-nest for which [want] says yes
    (callers typically decide from the subscript order, e.g. to make the
    fastest-varying subscript the inner loop). *)
