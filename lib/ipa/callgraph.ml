open Whirl

type callsite = {
  cs_caller : string;
  cs_callee : string;
  cs_loc : Lang.Loc.t;
  cs_wn : Wn.t;
}

type t = {
  order : string list;
  sites : callsite list;
  callee_map : (string, string list) Hashtbl.t;
  caller_map : (string, string list) Hashtbl.t;
  site_map : (string, callsite list) Hashtbl.t;
  (* derived structure, computed once at build time (the record is
     immutable afterwards, so parallel engine workers can share it): *)
  scc_list : string list list;  (** reverse topological (callees first) *)
  scc_index_tbl : (string, int) Hashtbl.t;  (** proc -> index in scc_list *)
  levels : int array;  (** per SCC index: DAG depth from the leaves *)
  recursive_set : (string, unit) Hashtbl.t;
}

(* Tarjan SCC; result in reverse topological order (callees first).  Note
   the recursion follows every callee name, so procedures that are called
   but never defined get their own singleton components too — downstream
   consumers (the engine's Merkle keys, the level schedule) rely on that. *)
let compute_sccs order callees_of =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees_of v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) order;
  (* Tarjan emits components in reverse topological order already *)
  List.rev !components

let build (m : Ir.module_) =
  let order = List.map (fun pu -> pu.Ir.pu_name) m.Ir.m_pus in
  let sites = ref [] in
  List.iter
    (fun pu ->
      Wn.preorder
        (fun w ->
          if w.Wn.operator = Wn.OPR_CALL then begin
            let callee = Ir.st_name m pu w.Wn.st_idx in
            sites :=
              {
                cs_caller = pu.Ir.pu_name;
                cs_callee = callee;
                cs_loc = w.Wn.linenum;
                cs_wn = w;
              }
              :: !sites
          end)
        pu.Ir.pu_body)
    m.Ir.m_pus;
  let sites = List.rev !sites in
  let callee_map = Hashtbl.create 16 in
  let caller_map = Hashtbl.create 16 in
  let site_map = Hashtbl.create 16 in
  List.iter
    (fun name ->
      Hashtbl.replace callee_map name [];
      Hashtbl.replace caller_map name [];
      Hashtbl.replace site_map name [])
    order;
  let push tbl key v =
    let cur = try Hashtbl.find tbl key with Not_found -> [] in
    if not (List.mem v cur) then Hashtbl.replace tbl key (cur @ [ v ])
  in
  List.iter
    (fun cs ->
      push callee_map cs.cs_caller cs.cs_callee;
      push caller_map cs.cs_callee cs.cs_caller;
      let cur = try Hashtbl.find site_map cs.cs_caller with Not_found -> [] in
      Hashtbl.replace site_map cs.cs_caller (cur @ [ cs ]))
    sites;
  let callees_of name =
    try Hashtbl.find callee_map name with Not_found -> []
  in
  let scc_list = compute_sccs order callees_of in
  let scc_arr = Array.of_list scc_list in
  let scc_index_tbl = Hashtbl.create 16 in
  Array.iteri
    (fun si scc -> List.iter (fun p -> Hashtbl.replace scc_index_tbl p si) scc)
    scc_arr;
  (* an SCC's level is one more than its deepest callee SCC: reverse
     topological order guarantees every callee SCC index is already done *)
  let levels = Array.make (Array.length scc_arr) 0 in
  Array.iteri
    (fun si scc ->
      levels.(si) <-
        List.fold_left
          (fun acc p ->
            List.fold_left
              (fun acc c ->
                match Hashtbl.find_opt scc_index_tbl c with
                | Some cj when cj <> si -> max acc (levels.(cj) + 1)
                | _ -> acc)
              acc (callees_of p))
          0 scc)
    scc_arr;
  let recursive_set = Hashtbl.create 16 in
  Array.iter
    (fun scc ->
      match scc with
      | [ p ] -> if List.mem p (callees_of p) then Hashtbl.replace recursive_set p ()
      | _ -> List.iter (fun p -> Hashtbl.replace recursive_set p ()) scc)
    scc_arr;
  {
    order;
    sites;
    callee_map;
    caller_map;
    site_map;
    scc_list;
    scc_index_tbl;
    levels;
    recursive_set;
  }

let procs t = t.order
let callsites t = t.sites

let callees t name = try Hashtbl.find t.callee_map name with Not_found -> []
let callers t name = try Hashtbl.find t.caller_map name with Not_found -> []
let callsites_in t name = try Hashtbl.find t.site_map name with Not_found -> []

let node_count t = List.length t.order

let edge_count t =
  List.fold_left (fun acc p -> acc + List.length (callees t p)) 0 t.order

let roots t = List.filter (fun p -> callers t p = []) t.order

let preorder t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec dfs p =
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.add seen p ();
      out := p :: !out;
      List.iter dfs (callees t p)
    end
  in
  List.iter dfs (roots t);
  (* disconnected procedures still get visited *)
  List.iter dfs t.order;
  List.rev !out

let sccs t = t.scc_list
let scc_index t name = Hashtbl.find_opt t.scc_index_tbl name
let scc_levels t = t.levels
let bottom_up t = List.concat t.scc_list
let is_recursive t name = Hashtbl.mem t.recursive_set name

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph callgraph {\n  node [shape=ellipse];\n";
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" p))
    t.order;
  List.iter
    (fun p ->
      List.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" p c))
        (callees t p))
    t.order;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_ascii_tree t =
  let buf = Buffer.create 512 in
  let visited = Hashtbl.create 16 in
  let rec walk depth p =
    Buffer.add_string buf
      (Printf.sprintf "%s- %s\n" (String.make (2 * depth) ' ') p);
    if not (Hashtbl.mem visited p) then begin
      Hashtbl.add visited p ();
      List.iter (walk (depth + 1)) (callees t p)
    end
  in
  List.iter (walk 0) (roots t);
  List.iter
    (fun p -> if not (Hashtbl.mem visited p) then walk 0 p)
    t.order;
  Buffer.add_string buf
    (Printf.sprintf "%d procedures, %d edges\n" (node_count t) (edge_count t));
  Buffer.contents buf
