open Whirl
open Regions

type entry = {
  le_array : string;
  le_mode : Mode.t;
  le_region : Region.t;
  le_refs : int;
}

type loop_summary = {
  ls_proc : string;
  ls_line : int;
  ls_ivar : string;
  ls_depth : int;
  ls_entries : entry list;
}

(* union the effects of a loop body per (array, mode).  Using run_body keeps
   the loop's own induction variable symbolic, so we close the result under
   the loop's bounds afterwards: the summary describes all iterations. *)
let summarize_loop m summaries pu (loop : Wn.t) =
  let body = Wn.kid loop 4 in
  let ivar_st = (Wn.kid loop 0).Wn.st_idx in
  let info = Collect.run_body m pu body in
  let direct =
    List.filter_map
      (fun (a : Collect.access) ->
        match a.Collect.ac_mode with
        | Mode.USE | Mode.DEF | Mode.RUSE | Mode.RDEF ->
          Some (a.Collect.ac_st, a.Collect.ac_mode, a.Collect.ac_region)
        | Mode.FORMAL | Mode.PASSED -> None)
      info.Collect.p_accesses
  in
  let from_calls =
    List.concat_map
      (fun site -> Parallel.site_effects m summaries ~caller:pu site)
      info.Collect.p_sites
  in
  (* close every region under the loop's own bounds *)
  let env =
    {
      Affine.var_of_st =
        (fun st ->
          Some
            (Collect.sym_var ~m ~pu:pu.Ir.pu_name ~st
               ~name:(Ir.st_name m pu st)));
      const_of_st = (fun _ -> None);
      iprop_of_st = (fun st -> (Ir.st_entry m pu st).Symtab.st_iprop);
    }
  in
  let lc =
    {
      Region.lc_var = Collect.sym_var ~m ~pu:pu.Ir.pu_name ~st:ivar_st
          ~name:(Ir.st_name m pu ivar_st);
      lc_lo = Affine.of_wn env (Wn.kid loop 1);
      lc_hi = Affine.of_wn env (Wn.kid loop 2);
      lc_step =
        (match Affine.of_wn env (Wn.kid loop 3) with
        | Affine.Affine e when Linear.Expr.is_const e
                               && Numeric.Rat.is_integer (Linear.Expr.constant e)
          ->
          Some (Numeric.Rat.to_int (Linear.Expr.constant e))
        | _ -> None);
    }
  in
  (* the loop variable was recorded as a Sym var by run_body; treat it as an
     Ivar for closing: rebuild the region with the loop constraint *)
  let close region =
    let sys = (region : Region.t).Region.sys in
    let has_ivar =
      Linear.Var.Set.mem lc.Region.lc_var (Linear.System.vars sys)
    in
    if not has_ivar then region
    else begin
      (* rename the symbolic ivar to a genuine Ivar variable so
         close_under_loops eliminates it *)
      let iv =
        Linear.Var.fresh ~name:(Linear.Var.name lc.Region.lc_var) Linear.Var.Ivar
      in
      let region = Region.subst_sym [ (lc.Region.lc_var, Linear.Expr.var iv) ] region in
      Region.close_under_loops [ { lc with Region.lc_var = iv } ] region
    end
  in
  let tbl : (string * Mode.t, Region.t * int) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (st, mode, region) ->
      let name = Ir.st_name m pu st in
      let region = close region in
      match Hashtbl.find_opt tbl (name, mode) with
      | None ->
        Hashtbl.add tbl (name, mode) (region, 1);
        order := (name, mode) :: !order
      | Some (acc, n) ->
        Hashtbl.replace tbl (name, mode) (Region.union_approx acc region, n + 1))
    (direct @ from_calls);
  List.rev_map
    (fun key ->
      let region, refs = Hashtbl.find tbl key in
      let name, mode = key in
      { le_array = name; le_mode = mode; le_region = region; le_refs = refs })
    !order

let of_pu m summaries pu =
  let out = ref [] in
  let rec walk depth (w : Wn.t) =
    match w.Wn.operator with
    | Wn.OPR_DO_LOOP ->
      out :=
        {
          ls_proc = pu.Ir.pu_name;
          ls_line = Lang.Loc.line w.Wn.linenum;
          ls_ivar = Ir.st_name m pu (Wn.kid w 0).Wn.st_idx;
          ls_depth = depth;
          ls_entries = summarize_loop m summaries pu w;
        }
        :: !out;
      walk (depth + 1) (Wn.kid w 4)
    | _ -> Array.iter (walk depth) w.Wn.kids
  in
  walk 0 pu.Ir.pu_body;
  List.rev !out

let of_module m summaries =
  List.concat_map (fun pu -> of_pu m summaries pu) m.Ir.m_pus

let copyin_bytes ls =
  List.filter_map
    (fun e ->
      match e.le_mode with
      | Mode.USE ->
        (* bounding-box bytes with a conventional 8-byte element (callers
           wanting exact element sizes should consult the symbol table) *)
        Option.map
          (fun n -> (e.le_array, n))
          (Region.point_count e.le_region)
      | _ -> None)
    ls.ls_entries

let render _m _pu summaries =
  let buf = Buffer.create 512 in
  List.iter
    (fun ls ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s line %d (do %s):\n"
           (String.make (2 * ls.ls_depth) ' ')
           ls.ls_proc ls.ls_line ls.ls_ivar);
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Format.asprintf "%s  %-10s %-6s %a (%d refs)\n"
               (String.make (2 * ls.ls_depth) ' ')
               e.le_array
               (Mode.to_string e.le_mode)
               Region.pp e.le_region e.le_refs))
        ls.ls_entries)
    summaries;
  Buffer.contents buf
