(** The IPA call graph: "each node in this graph represents a procedure and
    the caller-callee relationships are expressed by the edges.  This call
    graph should be traversed to extract the necessary array analysis
    information" (paper, Section IV-A). *)

type callsite = {
  cs_caller : string;
  cs_callee : string;
  cs_loc : Lang.Loc.t;
  cs_wn : Whirl.Wn.t;  (** the OPR_CALL node *)
}

type t

val build : Whirl.Ir.module_ -> t

val procs : t -> string list
(** Definition order. *)

val callsites : t -> callsite list
val callees : t -> string -> string list
(** Unique callees in callsite order. *)

val callers : t -> string -> string list
val callsites_in : t -> string -> callsite list
val node_count : t -> int
val edge_count : t -> int
(** Unique (caller, callee) pairs. *)

val roots : t -> string list
(** Procedures nobody calls (typically the main program). *)

val preorder : t -> string list
(** Depth-first pre-order from the roots — the traversal of Algorithm 1. *)

val sccs : t -> string list list
(** Tarjan strongly-connected components, in reverse topological order
    (callees before callers) — the bottom-up summary order.  Computed once
    at {!build} time (formerly re-run on every call); procedures that are
    called but never defined appear as singleton components. *)

val scc_index : t -> string -> int option
(** Index of the procedure's component in {!sccs} ([None] only for names
    the graph has never seen). *)

val scc_levels : t -> int array
(** Per component (indexed like {!sccs}): depth in the condensation DAG —
    0 for leaf components, otherwise one more than the deepest callee
    component.  Components on the same level share no caller-callee edge,
    which is what makes them safe to summarize in parallel. *)

val bottom_up : t -> string list
(** Flattened {!sccs}. *)

val is_recursive : t -> string -> bool
(** Member of a multi-node SCC, or self-calling (O(1)). *)

val to_dot : t -> string
val to_ascii_tree : t -> string
(** Indented tree rooted at the mains, Dragon-style (Fig 11). *)
