(** The analysis driver: runs IPL collection, propagates summaries bottom-up
    over the call graph, and renders the array-analysis rows — Algorithm 1
    end to end, producing the [.rgn]/[.dgn]/[.cfg] contents.

    Row conventions match the paper's screenshots:

    - per-dimension columns (LB/UB/Stride/Dim_size) are printed in the
      internal row-major order, but bounds are re-based to the source
      language's lower bounds (Fig 14 shows [u(5,65,65,64)] as dim sizes
      [64|65|65|5] with one-based bounds; Fig 9 shows C arrays zero-based);
    - [References] counts direct reference sites of that (scope, array,
      mode);
    - global arrays appear under scope ["@"], with the File column naming
      the object file whose code performs the access;
    - access density is [floor(100 * references / size_bytes)]. *)

type proc_table = {
  t_proc : string;
  t_accesses : Collect.access list;
      (** direct accesses plus call-propagated ones ([ac_via] set) *)
}

type result = {
  r_module : Whirl.Ir.module_;
  r_callgraph : Callgraph.t;
  r_infos : (string * Collect.pu_info) list;
  r_tables : proc_table list;
  r_summaries : (string * Summary.t) list;
  r_rows : Rgnfile.Row.t list;
  r_dgn : Rgnfile.Files.dgn;
  r_cfgs : (string * Cfg.t) list;
}

(** The former [analyze]/[analyze_sources] entry points (the serial
    reference pipeline) are gone: [Engine.run] at [~jobs:1] {e is} the
    serial path, composed from the same building blocks below, and
    [Engine.analyze]/[Engine.analyze_sources] are the drop-in
    conveniences. *)

(** {2 Building blocks}

    The stages the serial path above and the parallel [Engine] share.  They
    are deliberately schedule-free: [summarize_pu] performs one PU's summary
    step given a callee-summary lookup, and [assemble] renders rows/files
    from whatever the caller computed (or loaded from cache). *)

val summarize_pu :
  Whirl.Ir.module_ ->
  lookup:(string -> Summary.t option) ->
  Collect.pu_info ->
  Summary.t * Collect.access list
(** One bottom-up step of Algorithm 1: the PU's exported summary (local
    accesses plus translated callee side effects) and the call-propagated
    access records ([ac_via] set).  [lookup] returns the already-computed
    summary of a callee, or [None] for a call-graph cycle (worst-case
    summary is then assumed). *)

val assemble :
  Whirl.Ir.module_ ->
  Callgraph.t ->
  infos:(string * Collect.pu_info) list ->
  summaries:(string -> Summary.t option) ->
  propagated:(string -> Collect.access list) ->
  cfgs:(string * Cfg.t) list ->
  result
(** Renders tables, rows, the .dgn skeleton and the final {!result} record
    from per-PU collection results and summaries. *)

val display_bounds :
  Whirl.Ir.module_ ->
  Whirl.Ir.pu ->
  int ->
  Regions.Region.t ->
  string * string * string
(** [(lb, ub, stride)] column strings for an access to array [st]. *)

val summary_of : result -> string -> Summary.t
(** @raise Not_found for unknown procedures. *)

val write_outputs : result -> dir:string -> project:string -> string list
(** Writes [<project>.rgn], [<project>.dgn], [<project>.cfg] plus copies of
    the sources; returns the paths written. *)
