(** Data-dependence tests built on the region machinery — the consumer the
    paper says region analysis "mainly supports": "transformations done in
    latter phases of optimizations, such as data dependencies analysis that
    happens in the Loop Nest Optimizer (LNO) phase" (Section IV-A).

    All tests are sound over-approximations (convex, rational): "no
    dependence" answers are definitive, "dependence" answers may be
    spurious. *)

type kind = Flow | Anti | Output

type t = {
  dep_array : string;
  dep_kind : kind;
  dep_carried : bool;  (** by the analyzed loop *)
}

val kind_to_string : kind -> string

val loop_dependences :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  Whirl.Ir.pu ->
  Whirl.Wn.t ->
  t list
(** Dependences within and across iterations of one DO loop (its body's
    accesses plus summarized callee effects).  The carried flag is computed
    by the two-iteration (i < i') feasibility test. *)

val fusion_preventing :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  Whirl.Ir.pu ->
  first:Whirl.Wn.t ->
  second:Whirl.Wn.t ->
  string list
(** Arrays whose dependences would be reversed by fusing the two loops
    (second's iteration [i'] conflicts with first's iteration [i] for some
    [i' < i]).  Empty list = fusion is legal.  Both loops must use the same
    induction variable symbol. *)

val interchange_preventing :
  Whirl.Ir.module_ ->
  (string * Summary.t) list ->
  Whirl.Ir.pu ->
  outer:Whirl.Wn.t ->
  inner:Whirl.Wn.t ->
  string list
(** Arrays carrying a direction-vector (<, >) dependence in the perfect
    2-nest, which makes interchange illegal.  Empty list = legal. *)
