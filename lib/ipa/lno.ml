open Whirl

let headers_compatible (a : Wn.t) (b : Wn.t) =
  a.Wn.operator = Wn.OPR_DO_LOOP
  && b.Wn.operator = Wn.OPR_DO_LOOP
  && (Wn.kid a 0).Wn.st_idx = (Wn.kid b 0).Wn.st_idx
  && Wn.equal_tree (Wn.kid a 1) (Wn.kid b 1)
  && Wn.equal_tree (Wn.kid a 2) (Wn.kid b 2)
  && Wn.equal_tree (Wn.kid a 3) (Wn.kid b 3)

let fuse (a : Wn.t) (b : Wn.t) =
  if not (headers_compatible a b) then
    invalid_arg "Lno.fuse: incompatible loop headers";
  let body_a = Wn.kid a 4 and body_b = Wn.kid b 4 in
  let merged =
    { body_a with Wn.kids = Array.append body_a.Wn.kids body_b.Wn.kids }
  in
  { a with Wn.kids = [| Wn.kid a 0; Wn.kid a 1; Wn.kid a 2; Wn.kid a 3; merged |] }

let rec fuse_in_block m summaries pu (w : Wn.t) count =
  (* one left-to-right pass per call; the caller iterates to fixpoint *)
  let kids = Array.to_list w.Wn.kids in
  let rec go acc count = function
    | a :: b :: rest
      when headers_compatible a b
           && Deps.fusion_preventing m summaries pu ~first:a ~second:b = [] ->
      go acc (count + 1) (fuse a b :: rest)
    | x :: rest ->
      let x', count = fuse_in_stmt m summaries pu x count in
      go (x' :: acc) count rest
    | [] -> (List.rev acc, count)
  in
  let kids, count = go [] count kids in
  ({ w with Wn.kids = Array.of_list kids }, count)

and fuse_in_stmt m summaries pu (w : Wn.t) count =
  match w.Wn.operator with
  | Wn.OPR_BLOCK | Wn.OPR_FUNC_ENTRY -> fuse_in_block m summaries pu w count
  | Wn.OPR_DO_LOOP ->
    let body, count = fuse_in_stmt m summaries pu (Wn.kid w 4) count in
    ( { w with Wn.kids = [| Wn.kid w 0; Wn.kid w 1; Wn.kid w 2; Wn.kid w 3; body |] },
      count )
  | Wn.OPR_WHILE_DO ->
    let body, count = fuse_in_stmt m summaries pu (Wn.kid w 1) count in
    ({ w with Wn.kids = [| Wn.kid w 0; body |] }, count)
  | Wn.OPR_IF ->
    let t, count = fuse_in_stmt m summaries pu (Wn.kid w 1) count in
    let e, count = fuse_in_stmt m summaries pu (Wn.kid w 2) count in
    ({ w with Wn.kids = [| Wn.kid w 0; t; e |] }, count)
  | _ -> (w, count)

let fuse_pu m summaries (pu : Ir.pu) =
  let rec fixpoint body total =
    let body', n = fuse_in_stmt m summaries pu body 0 in
    if n = 0 then (body', total) else fixpoint body' (total + n)
  in
  let body, total = fixpoint pu.Ir.pu_body 0 in
  ({ pu with Ir.pu_body = body }, total)

let is_perfect_nest (w : Wn.t) =
  if w.Wn.operator <> Wn.OPR_DO_LOOP then None
  else
    let body = Wn.kid w 4 in
    if
      body.Wn.operator = Wn.OPR_BLOCK
      && Wn.kid_count body = 1
      && (Wn.kid body 0).Wn.operator = Wn.OPR_DO_LOOP
    then Some (Wn.kid body 0)
    else None

let interchange (outer : Wn.t) =
  match is_perfect_nest outer with
  | None -> invalid_arg "Lno.interchange: not a perfect 2-nest"
  | Some inner ->
    let inner_body = Wn.kid inner 4 in
    let new_inner =
      {
        outer with
        Wn.kids =
          [| Wn.kid outer 0; Wn.kid outer 1; Wn.kid outer 2; Wn.kid outer 3;
             inner_body |];
      }
    in
    let outer_body = { (Wn.kid outer 4) with Wn.kids = [| new_inner |] } in
    {
      inner with
      Wn.kids =
        [| Wn.kid inner 0; Wn.kid inner 1; Wn.kid inner 2; Wn.kid inner 3;
           outer_body |];
    }

type locality_suggestion = {
  loc_proc : string;
  loc_line : int;
  loc_outer : string;
  loc_inner : string;
  loc_bad_refs : int;
  loc_good_refs : int;
  loc_legal : bool;
}

(* does [st] appear in the WN expression? *)
let mentions_st st wn =
  Wn.count (fun w -> w.Wn.operator = Wn.OPR_LDID && w.Wn.st_idx = st) wn > 0

let locality_suggestions m summaries (pu : Ir.pu) =
  let out = ref [] in
  let rec walk (w : Wn.t) =
    (match w.Wn.operator, is_perfect_nest w with
    | Wn.OPR_DO_LOOP, Some inner ->
      let outer_st = (Wn.kid w 0).Wn.st_idx in
      let inner_st = (Wn.kid inner 0).Wn.st_idx in
      let bad = ref 0 and good = ref 0 in
      Wn.preorder
        (fun node ->
          if node.Wn.operator = Wn.OPR_ARRAY then begin
            let n = Wn.num_dim node in
            if n >= 2 then begin
              (* the last internal dimension is the contiguous one *)
              let fastest = Wn.array_index node (n - 1) in
              if mentions_st outer_st fastest && not (mentions_st inner_st fastest)
              then incr bad
              else if mentions_st inner_st fastest then incr good
            end
          end)
        (Wn.kid inner 4);
      if !bad > !good && !bad > 0 then
        out :=
          {
            loc_proc = pu.Ir.pu_name;
            loc_line = Lang.Loc.line w.Wn.linenum;
            loc_outer = Ir.st_name m pu outer_st;
            loc_inner = Ir.st_name m pu inner_st;
            loc_bad_refs = !bad;
            loc_good_refs = !good;
            loc_legal =
              Deps.interchange_preventing m summaries pu ~outer:w ~inner = [];
          }
          :: !out
    | _ -> ());
    match w.Wn.operator with
    | Wn.OPR_DO_LOOP -> walk (Wn.kid w 4)
    | _ -> Array.iter walk w.Wn.kids
  in
  walk pu.Ir.pu_body;
  List.rev !out

let interchange_pu m summaries (pu : Ir.pu) ~want =
  let count = ref 0 in
  let rec walk (w : Wn.t) : Wn.t =
    match w.Wn.operator with
    | Wn.OPR_BLOCK | Wn.OPR_FUNC_ENTRY ->
      { w with Wn.kids = Array.map walk w.Wn.kids }
    | Wn.OPR_IF ->
      { w with Wn.kids = [| Wn.kid w 0; walk (Wn.kid w 1); walk (Wn.kid w 2) |] }
    | Wn.OPR_WHILE_DO -> { w with Wn.kids = [| Wn.kid w 0; walk (Wn.kid w 1) |] }
    | Wn.OPR_DO_LOOP -> (
      match is_perfect_nest w with
      | Some inner
        when want
               ~outer_ivar:(Ir.st_name m pu (Wn.kid w 0).Wn.st_idx)
               ~inner_ivar:(Ir.st_name m pu (Wn.kid inner 0).Wn.st_idx)
             && Deps.interchange_preventing m summaries pu ~outer:w ~inner = []
        ->
        incr count;
        (* recurse below the swapped nest too *)
        let swapped = interchange w in
        let body = walk (Wn.kid swapped 4) in
        {
          swapped with
          Wn.kids =
            [| Wn.kid swapped 0; Wn.kid swapped 1; Wn.kid swapped 2;
               Wn.kid swapped 3; body |];
        }
      | _ ->
        let body = walk (Wn.kid w 4) in
        {
          w with
          Wn.kids =
            [| Wn.kid w 0; Wn.kid w 1; Wn.kid w 2; Wn.kid w 3; body |];
        })
    | _ -> w
  in
  let body = walk pu.Ir.pu_body in
  ({ pu with Ir.pu_body = body }, !count)
