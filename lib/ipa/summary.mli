(** Procedure side-effect summaries and their call-site translation — the
    IPA main phase (paper, Section IV-A: "the main IPA module gathers all
    the IPL summary files to perform interprocedural analysis").

    A summary lists the regions a procedure may USE or DEF, keyed by global
    array or by formal-parameter position.  Translating a summary at a call
    site maps formal keys to the actual arrays, substitutes actual values
    for the callee's symbolic formal scalars (Creusillet-style formal-to-
    actual mapping), and closes the result under the caller's enclosing
    loops. *)

type key =
  | Kglobal of int  (** global-encoded st index *)
  | Kformal of int  (** 0-based parameter position *)

type entry = {
  e_key : key;
  e_mode : Regions.Mode.t;  (** USE or DEF only *)
  e_region : Regions.Region.t;
  e_count : int;  (** number of reference sites summarized *)
}

type t = entry list

val max_regions_per_key : int
(** Per (key, mode) the summary keeps at most this many distinct regions;
    beyond that they collapse by {!Regions.Region.union_approx}. *)

val add_entry : t -> entry -> t
(** Merges with an existing display-equal region, respects the cap. *)

val add_entries : t -> entry list -> t
(** Same result as folding {!add_entry} left-to-right (that fold is the
    definition, and the path taken when {!Regions.Region.fast_join_enabled}
    is off).  The default fast path builds the summary through a
    (key, mode)-bucketed index, replacing the per-insertion whole-list scan
    with a bucket lookup, and collapses capped slots through
    {!Regions.Region.union_many}. *)

val of_local :
  Whirl.Ir.module_ -> Whirl.Ir.pu -> Collect.access list -> t
(** Direct accesses only: local arrays are dropped, FORMAL/PASSED modes are
    display-only and skipped. *)

val opaque : Whirl.Ir.module_ -> Whirl.Ir.pu -> t
(** Worst-case summary used for recursive cycles: every global array and
    every formal array is USE+DEF over its whole extent. *)

(** Translation of one callee entry at one call site.  Results: *)
type translated = {
  t_st : int;  (** the caller-side array the entry now describes *)
  t_mode : Regions.Mode.t;
  t_region : Regions.Region.t;
  t_count : int;
}

val translate :
  Whirl.Ir.module_ ->
  caller:Whirl.Ir.pu ->
  callee:Whirl.Ir.pu ->
  site:Collect.site ->
  t ->
  translated list

val pp : Whirl.Ir.module_ -> Whirl.Ir.pu -> Format.formatter -> t -> unit
