open Whirl
open Regions

type access = {
  ac_st : int;
  ac_mode : Mode.t;
  ac_region : Region.t;
  ac_loc : Lang.Loc.t;
  ac_via : string option;
  ac_sparse : string option;
}

type callsite_arg =
  | Arg_array_whole of int
  | Arg_array_elem of int * Affine.result list
  | Arg_scalar_ref of int
  | Arg_value of Affine.result

type site = {
  s_callee : string;
  s_args : callsite_arg list;
  s_loops : (int * Region.loop_ctx) list;
  s_loc : Lang.Loc.t;
}

type pu_info = {
  p_pu : Ir.pu;
  p_accesses : access list;
  p_sites : site list;
}

(* ------------------------------------------------------------------ *)
(* Stable symbolic variables for scalars *)

let sym_registry : (int * string * int, Linear.Var.t) Hashtbl.t =
  Hashtbl.create 64

let sym_reverse : (int, string * int) Hashtbl.t = Hashtbl.create 64

(* Per-PU collection runs on several domains at once; the registry is the
   one piece of state they share, so it is guarded.  Determinism of the
   variable ids is handled separately by {!intern_module_syms}. *)
let sym_mutex = Mutex.create ()

let sym_var ~m ~pu ~st ~name =
  let key =
    if Ir.is_global_idx st then (m.Ir.m_id, "", st) else (m.Ir.m_id, pu, st)
  in
  Mutex.lock sym_mutex;
  let v =
    match Hashtbl.find_opt sym_registry key with
    | Some v -> v
    | None ->
      let v = Linear.Var.fresh ~name Linear.Var.Sym in
      Hashtbl.add sym_registry key v;
      let _, owner, code = key in
      Hashtbl.replace sym_reverse (Linear.Var.id v) (owner, code);
      v
  in
  Mutex.unlock sym_mutex;
  v

let sym_info v =
  Mutex.lock sym_mutex;
  let r = Hashtbl.find_opt sym_reverse (Linear.Var.id v) in
  Mutex.unlock sym_mutex;
  r

let intern_module_syms (m : Ir.module_) =
  (* Pre-register the symbolic variable of every scalar symbol, globals
     first then each PU's locals in definition order.  After this pass the
     parallel collection phase only ever *looks up* symbolic variables, so
     their ids — and hence the rendered order of symbolic bound terms — no
     longer depend on the schedule. *)
  Symtab.iter_st m.Ir.m_global (fun idx e ->
      match Symtab.ty m.Ir.m_global e.Symtab.st_ty with
      | Symtab.Ty_scalar _ ->
        ignore
          (sym_var ~m ~pu:"" ~st:(Ir.encode_global idx) ~name:e.Symtab.st_name)
      | Symtab.Ty_array _ -> ());
  List.iter
    (fun pu ->
      Symtab.iter_st pu.Ir.pu_symtab (fun idx e ->
          match Symtab.ty pu.Ir.pu_symtab e.Symtab.st_ty with
          | Symtab.Ty_scalar _ ->
            ignore (sym_var ~m ~pu:pu.Ir.pu_name ~st:idx ~name:e.Symtab.st_name)
          | Symtab.Ty_array _ -> ()))
    m.Ir.m_pus

(* ------------------------------------------------------------------ *)

let extents_of m pu st =
  match Ir.ty_of m pu st with
  | Symtab.Ty_array { dims; _ } ->
    let ext =
      List.map
        (fun (lo, hi) ->
          match lo, hi with
          | Some l, Some h when h >= l -> Some (h - l + 1)
          | _ -> None)
        dims
    in
    (match pu.Ir.pu_lang with
    | Lang.Ast.Fortran -> List.rev ext
    | Lang.Ast.C -> ext)
  | Symtab.Ty_scalar _ -> []

let is_array m pu st =
  match Ir.ty_of m pu st with
  | Symtab.Ty_array _ -> true
  | Symtab.Ty_scalar _ -> false

type state = {
  m : Ir.module_;
  pu : Ir.pu;
  mutable loops : (int * Region.loop_ctx) list;  (* innermost first *)
  mutable accesses : access list;
  mutable sites : site list;
}

let affine_env s =
  {
    Affine.var_of_st =
      (fun st ->
        match List.assoc_opt st s.loops with
        | Some lc -> Some lc.Region.lc_var
        | None ->
          let name = Ir.st_name s.m s.pu st in
          Some (sym_var ~m:s.m ~pu:s.pu.Ir.pu_name ~st ~name));
    const_of_st = (fun _ -> None);
    iprop_of_st = (fun st -> (Ir.st_entry s.m s.pu st).Symtab.st_iprop);
  }

let loop_ctxs s = List.map snd s.loops

let record ?sparse s st mode region loc =
  s.accesses <-
    {
      ac_st = st;
      ac_mode = mode;
      ac_region = region;
      ac_loc = loc;
      ac_via = None;
      ac_sparse = sparse;
    }
    :: s.accesses

(* name of the first index array appearing in a subscript list — the
   inspector label for accesses that stay undecidable *)
let sparse_marker s subs =
  List.find_map
    (function
      | Affine.Sparse sp -> Some (Ir.st_name s.m s.pu sp.Affine.sp_st)
      | Affine.Affine _ | Affine.Messy -> None)
    subs

let region_of_array_node s (w : Wn.t) =
  let n = Wn.num_dim w in
  let env = affine_env s in
  let subs = List.init n (fun k -> Affine.of_wn env (Wn.array_index w k)) in
  let st = (Wn.array_base w).Wn.st_idx in
  let extents = extents_of s.m s.pu st in
  (st, Region.of_subscripts ~extents ~loops:(loop_ctxs s) subs, sparse_marker s subs)

let whole_region s st = Region.whole ~extents:(extents_of s.m s.pu st)

(* ------------------------------------------------------------------ *)

let rec walk_expr s (w : Wn.t) =
  match w.Wn.operator with
  | Wn.OPR_ILOAD ->
    let addr = Wn.kid w 0 in
    if addr.Wn.operator = Wn.OPR_ARRAY then begin
      let st, region, sparse = region_of_array_node s addr in
      record ?sparse s st Mode.USE region w.Wn.linenum;
      let n = Wn.num_dim addr in
      for k = 0 to n - 1 do
        walk_expr s (Wn.array_index addr k)
      done
    end
    else if addr.Wn.operator = Wn.OPR_COIDX then begin
      (* remote coarray read: x(i)[p] *)
      let arr = Wn.kid addr 0 in
      let st, region, sparse = region_of_array_node s arr in
      record ?sparse s st Mode.RUSE region w.Wn.linenum;
      let n = Wn.num_dim arr in
      for k = 0 to n - 1 do
        walk_expr s (Wn.array_index arr k)
      done;
      walk_expr s (Wn.kid addr 1)
    end
    else walk_expr s addr
  | Wn.OPR_LDA ->
    if is_array s.m s.pu w.Wn.st_idx then
      record s w.Wn.st_idx Mode.USE (whole_region s w.Wn.st_idx) w.Wn.linenum
  | Wn.OPR_ARRAY ->
    let n = Wn.num_dim w in
    for k = 0 to n - 1 do
      walk_expr s (Wn.array_index w k)
    done
  | Wn.OPR_CALL -> walk_call s w
  | _ -> Array.iter (walk_expr s) w.Wn.kids

and walk_call s (w : Wn.t) =
  let callee = Ir.st_name s.m s.pu w.Wn.st_idx in
  let env = affine_env s in
  let args =
    Array.to_list w.Wn.kids
    |> List.map (fun parm ->
           let a = Wn.kid parm 0 in
           match a.Wn.operator with
           | Wn.OPR_LDA when is_array s.m s.pu a.Wn.st_idx ->
             (* PASSED: the whole array is handed to the callee *)
             record s a.Wn.st_idx Mode.PASSED (whole_region s a.Wn.st_idx)
               w.Wn.linenum;
             Arg_array_whole a.Wn.st_idx
           | Wn.OPR_LDA -> Arg_scalar_ref a.Wn.st_idx
           | Wn.OPR_ARRAY ->
             let st = (Wn.array_base a).Wn.st_idx in
             let n = Wn.num_dim a in
             let coords =
               List.init n (fun k -> Affine.of_wn env (Wn.array_index a k))
             in
             for k = 0 to n - 1 do
               walk_expr s (Wn.array_index a k)
             done;
             let extents = extents_of s.m s.pu st in
             let region =
               Region.of_subscripts ~extents ~loops:(loop_ctxs s) coords
             in
             record ?sparse:(sparse_marker s coords) s st Mode.PASSED region
               w.Wn.linenum;
             Arg_array_elem (st, coords)
           | _ ->
             walk_expr s a;
             Arg_value (Affine.of_wn env a))
  in
  s.sites <-
    { s_callee = callee; s_args = args; s_loops = s.loops; s_loc = w.Wn.linenum }
    :: s.sites

let rec walk_stmt s (w : Wn.t) =
  match w.Wn.operator with
  | Wn.OPR_BLOCK | Wn.OPR_FUNC_ENTRY -> Array.iter (walk_stmt s) w.Wn.kids
  | Wn.OPR_STID -> walk_expr s (Wn.kid w 0)
  | Wn.OPR_ISTORE ->
    walk_expr s (Wn.kid w 0);
    let addr = Wn.kid w 1 in
    if addr.Wn.operator = Wn.OPR_ARRAY then begin
      let st, region, sparse = region_of_array_node s addr in
      record ?sparse s st Mode.DEF region w.Wn.linenum;
      let n = Wn.num_dim addr in
      for k = 0 to n - 1 do
        walk_expr s (Wn.array_index addr k)
      done
    end
    else if addr.Wn.operator = Wn.OPR_COIDX then begin
      (* remote coarray write: x(i)[p] = ... *)
      let arr = Wn.kid addr 0 in
      let st, region, sparse = region_of_array_node s arr in
      record ?sparse s st Mode.RDEF region w.Wn.linenum;
      let n = Wn.num_dim arr in
      for k = 0 to n - 1 do
        walk_expr s (Wn.array_index arr k)
      done;
      walk_expr s (Wn.kid addr 1)
    end
    else walk_expr s addr
  | Wn.OPR_DO_LOOP ->
    let ivar_st = (Wn.kid w 0).Wn.st_idx in
    (* loop bound expressions run in the enclosing context *)
    walk_expr s (Wn.kid w 1);
    walk_expr s (Wn.kid w 2);
    walk_expr s (Wn.kid w 3);
    let env = affine_env s in
    let lo = Affine.of_wn env (Wn.kid w 1) in
    let hi = Affine.of_wn env (Wn.kid w 2) in
    let step =
      match Affine.of_wn env (Wn.kid w 3) with
      | Affine.Affine e when Linear.Expr.is_const e ->
        let c = Linear.Expr.constant e in
        if Numeric.Rat.is_integer c then Some (Numeric.Rat.to_int c) else None
      | _ -> None
    in
    let name = Ir.st_name s.m s.pu ivar_st in
    let lc =
      {
        Region.lc_var = Linear.Var.fresh ~name Linear.Var.Ivar;
        lc_lo = lo;
        lc_hi = hi;
        lc_step = step;
      }
    in
    s.loops <- (ivar_st, lc) :: s.loops;
    walk_stmt s (Wn.kid w 4);
    s.loops <- List.tl s.loops
  | Wn.OPR_WHILE_DO ->
    walk_expr s (Wn.kid w 0);
    walk_stmt s (Wn.kid w 1)
  | Wn.OPR_IF ->
    walk_expr s (Wn.kid w 0);
    walk_stmt s (Wn.kid w 1);
    walk_stmt s (Wn.kid w 2)
  | Wn.OPR_CALL -> walk_call s w
  | Wn.OPR_IO | Wn.OPR_INTRINSIC_OP ->
    Array.iter
      (fun parm ->
        let a = if parm.Wn.operator = Wn.OPR_PARM then Wn.kid parm 0 else parm in
        walk_expr s a)
      w.Wn.kids
  | Wn.OPR_RETURN -> Array.iter (walk_expr s) w.Wn.kids
  | Wn.OPR_NOP -> ()
  | _ -> Array.iter (walk_expr s) w.Wn.kids

let formals_records s =
  List.iter
    (fun idx ->
      let entry = Symtab.st s.pu.Ir.pu_symtab idx in
      match Symtab.ty s.pu.Ir.pu_symtab entry.Symtab.st_ty with
      | Symtab.Ty_array _ ->
        record s idx Mode.FORMAL (whole_region s idx) entry.Symtab.st_loc
      | Symtab.Ty_scalar _ -> ())
    s.pu.Ir.pu_formals

let run_body m pu wn =
  let s = { m; pu; loops = []; accesses = []; sites = [] } in
  walk_stmt s wn;
  {
    p_pu = pu;
    p_accesses = List.rev s.accesses;
    p_sites = List.rev s.sites;
  }

let scalar_defs m pu wn =
  let defs = ref [] in
  Wn.preorder
    (fun w ->
      if w.Wn.operator = Wn.OPR_STID && not (is_array m pu w.Wn.st_idx) then
        if not (List.mem w.Wn.st_idx !defs) then defs := w.Wn.st_idx :: !defs)
    wn;
  List.rev !defs

let loop_bounds_for m pu (loop : Wn.t) var =
  let env =
    {
      Affine.var_of_st =
        (fun st ->
          Some (sym_var ~m ~pu:pu.Ir.pu_name ~st ~name:(Ir.st_name m pu st)));
      const_of_st = (fun _ -> None);
      iprop_of_st = (fun st -> (Ir.st_entry m pu st).Symtab.st_iprop);
    }
  in
  let lo = Affine.of_wn env (Wn.kid loop 1) in
  let hi = Affine.of_wn env (Wn.kid loop 2) in
  let step =
    match Affine.of_wn env (Wn.kid loop 3) with
    | Affine.Affine e when Linear.Expr.is_const e
                           && Numeric.Rat.is_integer (Linear.Expr.constant e) ->
      Some (Numeric.Rat.to_int (Linear.Expr.constant e))
    | _ -> None
  in
  let v = Linear.Expr.var var in
  match lo, hi, step with
  | Affine.Affine lo, Affine.Affine hi, Some s when s > 0 ->
    [ Linear.Constr.ge v lo; Linear.Constr.le v hi ]
  | Affine.Affine lo, Affine.Affine hi, Some s when s < 0 ->
    [ Linear.Constr.ge v hi; Linear.Constr.le v lo ]
  | Affine.Affine lo, Affine.Affine hi, _
    when Linear.Expr.is_const lo && Linear.Expr.is_const hi ->
    (* unknown step sign but constant bounds: the iteration space is within
       [min, max] either way *)
    let a = Linear.Expr.constant lo and b = Linear.Expr.constant hi in
    let mn = Numeric.Rat.min a b and mx = Numeric.Rat.max a b in
    [
      Linear.Constr.ge v (Linear.Expr.const mn);
      Linear.Constr.le v (Linear.Expr.const mx);
    ]
  | _ ->
    (* direction unknowable: leave the variable unconstrained (sound) *)
    []

let run_pu (m : Ir.module_) pu =
  let s = { m; pu; loops = []; accesses = []; sites = [] } in
  formals_records s;
  walk_stmt s pu.Ir.pu_body;
  {
    p_pu = pu;
    p_accesses = List.rev s.accesses;
    p_sites = List.rev s.sites;
  }

let run (m : Ir.module_) = List.map (run_pu m) m.Ir.m_pus
