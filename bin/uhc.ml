(* uhc: the compiler-side driver.

   Mirrors the paper's usage step 1-2: compile the application with
   interprocedural array analysis enabled and obtain the .dgn/.cfg/.rgn
   files that Dragon loads.  Additional inspection flags expose the stages
   (WHIRL dump, whirl2src, call graph, summaries) and the interpreter. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let copy_sources ~dir files =
  List.iter
    (fun (name, contents) ->
      let dst = Filename.concat dir (Filename.basename name) in
      Rgnfile.Files.save ~path:dst contents)
    files

let load_inputs paths corpus =
  match corpus with
  | Some "lu" -> Corpus.Nas_lu.files ()
  | Some "matrix" -> [ Corpus.Small.matrix_c ]
  | Some "fig1" -> [ Corpus.Small.fig1_f ]
  | Some "stride" -> [ Corpus.Small.stride_f ]
  | Some other -> failwith (Printf.sprintf "unknown corpus %S (lu|matrix|fig1|stride)" other)
  | None -> List.map (fun p -> (p, read_file p)) paths

let run paths corpus out_dir project dump_whirl dump_src dump_callgraph
    dump_summaries execute wopt ipl_dir fuse autopar emit_whirl loop_summaries =
  try
    (* a single .B input resumes from a serialized WHIRL file, skipping the
       front ends entirely -- the paper's multi-phase pipeline *)
    let from_whirl =
      match paths, corpus with
      | [ p ], None when Filename.extension p = ".B" -> Some p
      | _ -> None
    in
    let files =
      match from_whirl with Some _ -> [] | None -> load_inputs paths corpus
    in
    if files = [] && from_whirl = None then begin
      prerr_endline "uhc: no input files";
      exit 2
    end;
    let m0 =
      match from_whirl with
      | Some path -> (
        match Whirl.Whirl_io.load ~path with
        | Ok m -> m
        | Error e -> failwith (Printf.sprintf "%s: %s" path e))
      | None -> Whirl.Lower.lower (Lang.Frontend.load ~files)
    in
    let m0 =
      if wopt then begin
        let m1, cp = Wopt.Const_prop.run m0 in
        let m2, dce = Wopt.Dce.run m1 in
        Printf.printf
          "wopt: folded %d loads, %d ops, %d branches; removed %d statements, %d dead stores\n"
          cp.Wopt.Const_prop.folded_loads cp.Wopt.Const_prop.folded_ops
          cp.Wopt.Const_prop.folded_branches dce.Wopt.Dce.removed_stmts
          dce.Wopt.Dce.removed_stores;
        m2
      end
      else m0
    in
    let result = Ipa.Analyze.analyze m0 in
    let result =
      if not fuse then result
      else begin
        (* LNO: dependence-legal fusion of adjacent compatible loops *)
        let m = result.Ipa.Analyze.r_module in
        let total = ref 0 in
        let pus =
          List.map
            (fun pu ->
              let pu', n =
                Ipa.Lno.fuse_pu m result.Ipa.Analyze.r_summaries pu
              in
              total := !total + n;
              pu')
            m.Whirl.Ir.m_pus
        in
        Printf.printf "lno: fused %d loop pair(s)\n" !total;
        Ipa.Analyze.analyze { m with Whirl.Ir.m_pus = pus }
      end
    in
    let m = result.Ipa.Analyze.r_module in
    if dump_whirl then
      List.iter
        (fun pu ->
          Format.printf "=== %s ===@.%a@." pu.Whirl.Ir.pu_name Whirl.Wn.pp
            pu.Whirl.Ir.pu_body)
        m.Whirl.Ir.m_pus;
    if dump_src then print_string (Whirl.Whirl2src.module_to_string m);
    if dump_callgraph then
      print_string (Ipa.Callgraph.to_ascii_tree result.Ipa.Analyze.r_callgraph);
    if dump_summaries then
      List.iter
        (fun (name, summary) ->
          match Whirl.Ir.find_pu m name with
          | None -> ()
          | Some pu ->
            Format.printf "@[<v 2>summary of %s:@,%a@]@." name
              (Ipa.Summary.pp m pu) summary)
        result.Ipa.Analyze.r_summaries;
    if loop_summaries then
      List.iter
        (fun pu ->
          let lss = Ipa.Loopsum.of_pu m result.Ipa.Analyze.r_summaries pu in
          if lss <> [] then print_string (Ipa.Loopsum.render m pu lss))
        m.Whirl.Ir.m_pus;
    if autopar then begin
      let report = Ipa.Autopar.plan m result.Ipa.Analyze.r_summaries in
      print_string (Ipa.Autopar.render report);
      (* annotated sources *)
      List.iter
        (fun (name, contents) ->
          let annotated = Ipa.Autopar.annotate report ~file:name contents in
          if annotated <> contents then begin
            Printf.printf "--- %s (annotated) ---\n" name;
            print_string annotated
          end)
        files
    end;
    if execute then begin
      let outcome = Interp.run m in
      print_string outcome.Interp.out_text;
      Printf.printf "(%d statements executed)\n" outcome.Interp.out_steps;
      if dump_callgraph then begin
        (* the dynamic call graph with feedback information (Dragon Fig 5) *)
        let project =
          Dragon.Project.make ~name:project ~dgn:result.Ipa.Analyze.r_dgn
            ~rows:[] ~cfg:[] ~sources:[]
        in
        print_string
          (Dragon.Graphs.callgraph_ascii ~feedback:outcome.Interp.out_calls
             project)
      end
    end;
    (match out_dir with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let written = Ipa.Analyze.write_outputs result ~dir ~project in
      copy_sources ~dir files;
      List.iter (Printf.printf "wrote %s\n") written);
    (match ipl_dir with
    | None -> ()
    | Some dir ->
      (* one .ipl per compilation unit, as the paper's IPL phase does *)
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let by_unit = Hashtbl.create 8 in
      List.iter
        (fun pu ->
          let unit_name =
            Filename.remove_extension (Filename.basename pu.Whirl.Ir.pu_file)
          in
          let cur =
            try Hashtbl.find by_unit unit_name with Not_found -> []
          in
          match List.assoc_opt pu.Whirl.Ir.pu_name result.Ipa.Analyze.r_summaries with
          | Some s -> Hashtbl.replace by_unit unit_name (cur @ [ (pu.Whirl.Ir.pu_name, s) ])
          | None -> ())
        m.Whirl.Ir.m_pus;
      Hashtbl.iter
        (fun unit_name summaries ->
          let path =
            Ipa.Iplfile.save ~dir ~unit_name
              (Ipa.Iplfile.write_unit m summaries)
          in
          Printf.printf "wrote %s\n" path)
        by_unit);
    (match emit_whirl with
    | None -> ()
    | Some path ->
      Whirl.Whirl_io.save ~path m;
      Printf.printf "wrote %s\n" path);
    Printf.printf
      "analyzed %d procedures, %d call edges, %d array-region rows\n"
      (Ipa.Callgraph.node_count result.Ipa.Analyze.r_callgraph)
      (Ipa.Callgraph.edge_count result.Ipa.Analyze.r_callgraph)
      (List.length result.Ipa.Analyze.r_rows);
    0
  with
  | Lang.Diag.Frontend_error d ->
    Printf.eprintf "%s\n" (Lang.Diag.to_string d);
    1
  | Failure msg ->
    Printf.eprintf "uhc: %s\n" msg;
    1

open Cmdliner

let paths =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Source files (.f/.f90/.c).")

let corpus =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"NAME"
        ~doc:"Analyze a built-in example instead of files: lu, matrix, fig1, stride.")

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"DIR"
        ~doc:"Write the .rgn/.dgn/.cfg project files (and source copies) here.")

let project =
  Arg.(
    value & opt string "project"
    & info [ "p"; "project" ] ~docv:"NAME" ~doc:"Project (file base) name.")

let dump_whirl =
  Arg.(value & flag & info [ "dump-whirl" ] ~doc:"Print the WHIRL trees.")

let dump_src =
  Arg.(value & flag & info [ "whirl2src" ] ~doc:"Print whirl2src output.")

let dump_callgraph =
  Arg.(value & flag & info [ "callgraph" ] ~doc:"Print the call graph.")

let dump_summaries =
  Arg.(value & flag & info [ "summaries" ] ~doc:"Print procedure region summaries.")

let execute =
  Arg.(value & flag & info [ "run" ] ~doc:"Interpret the program after analysis.")

let wopt =
  Arg.(
    value & flag
    & info [ "wopt" ]
        ~doc:
          "Run the WHIRL optimizer (constant propagation + dead code \
           elimination) before the analysis; constant-folds loop bounds, \
           which sharpens symbolic region bounds into exact triplets.")

let ipl_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "ipl" ] ~docv:"DIR"
        ~doc:"Write per-compilation-unit .ipl summary files (the IPL/IPA \
              boundary of the paper).")

let fuse =
  Arg.(
    value & flag
    & info [ "fuse" ]
        ~doc:"Run the LNO fusion pass (dependence-legal adjacent loop \
              fusion) after the analysis and re-analyze.")

let autopar =
  Arg.(
    value & flag
    & info [ "autopar" ]
        ~doc:"Detect parallelizable outermost loops and print the annotated \
              sources with OpenMP directives inserted.")

let emit_whirl =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-whirl" ] ~docv:"FILE"
        ~doc:"Serialize the (optimized) WHIRL module to FILE (.B analog); a \
              later run can analyze the FILE directly.")

let loop_summaries =
  Arg.(
    value & flag
    & info [ "loop-summaries" ]
        ~doc:"Print per-loop access summaries (the loop-level granularity \
              of the paper's Section I).")

let cmd =
  let doc = "analyze array regions in MiniF/MiniC programs (OpenUH-style)" in
  Cmd.v
    (Cmd.info "uhc" ~doc)
    Term.(
      const run $ paths $ corpus $ out_dir $ project $ dump_whirl $ dump_src
      $ dump_callgraph $ dump_summaries $ execute $ wopt $ ipl_dir $ fuse
      $ autopar $ emit_whirl $ loop_summaries)

let () = exit (Cmd.eval' cmd)
