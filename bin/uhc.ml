(* uhc: command-line front over Pipeline (lib/engine).

   Mirrors the paper's usage step 1-2: compile the application with
   interprocedural array analysis enabled and obtain the .dgn/.cfg/.rgn
   files that Dragon loads.  All driver logic lives in [Pipeline.run];
   this file only maps flags onto [Pipeline.config]. *)

let run paths corpus out_dir project dump_whirl dump_src dump_callgraph
    dump_summaries execute wopt ipl_dir fuse autopar emit_whirl loop_summaries
    jobs workers cache_dir stats stats_det trace metrics log_level keep_going
    fault_specs diagnostics solver_budget join_path solver_core analyses report
    ledger no_ledger =
  let ledger =
    if no_ledger then Some false else if ledger then Some true else None
  in
  let result =
    Pipeline.run
      (Pipeline.make ~paths ?corpus ?out_dir ~project ~dump_whirl ~dump_src
         ~dump_callgraph ~dump_summaries ~execute ~wopt ?ipl_dir ~fuse ~autopar
         ?emit_whirl ~loop_summaries ~jobs ~workers ?cache_dir ~stats
         ~stats_det ?trace
         ?metrics ~log_level ~keep_going ~fault_specs ?diagnostics
         ?solver_budget ~join_path ~solver_core ~analyses ?report ?ledger ())
  in
  result.Pipeline.r_code

open Cmdliner

let paths =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Source files (.f/.f90/.c).")

let corpus =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"NAME"
        ~doc:"Analyze a built-in example instead of files: lu, matrix, fig1, \
              stride, gen (pinned seed-42 scale corpus), gen-small.")

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"DIR"
        ~doc:"Write the .rgn/.dgn/.cfg project files (and source copies) here.")

let project =
  Arg.(
    value & opt string "project"
    & info [ "p"; "project" ] ~docv:"NAME" ~doc:"Project (file base) name.")

let dump_whirl =
  Arg.(value & flag & info [ "dump-whirl" ] ~doc:"Print the WHIRL trees.")

let dump_src =
  Arg.(value & flag & info [ "whirl2src" ] ~doc:"Print whirl2src output.")

let dump_callgraph =
  Arg.(value & flag & info [ "callgraph" ] ~doc:"Print the call graph.")

let dump_summaries =
  Arg.(value & flag & info [ "summaries" ] ~doc:"Print procedure region summaries.")

let execute =
  Arg.(value & flag & info [ "run" ] ~doc:"Interpret the program after analysis.")

let wopt =
  Arg.(
    value & flag
    & info [ "wopt" ]
        ~doc:
          "Run the WHIRL optimizer (constant propagation + dead code \
           elimination) before the analysis; constant-folds loop bounds, \
           which sharpens symbolic region bounds into exact triplets.")

let ipl_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "ipl" ] ~docv:"DIR"
        ~doc:"Write per-compilation-unit .ipl summary files (the IPL/IPA \
              boundary of the paper).")

let fuse =
  Arg.(
    value & flag
    & info [ "fuse" ]
        ~doc:"Run the LNO fusion pass (dependence-legal adjacent loop \
              fusion) after the analysis and re-analyze.")

let autopar =
  Arg.(
    value & flag
    & info [ "autopar" ]
        ~doc:"Detect parallelizable outermost loops and print the annotated \
              sources with OpenMP directives inserted.")

let emit_whirl =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-whirl" ] ~docv:"FILE"
        ~doc:"Serialize the (optimized) WHIRL module to FILE (.B analog); a \
              later run can analyze the FILE directly.")

let loop_summaries =
  Arg.(
    value & flag
    & info [ "loop-summaries" ]
        ~doc:"Print per-loop access summaries (the loop-level granularity \
              of the paper's Section I).")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Analysis domains: 1 = serial (default), 0 = one per core. \
              Output is byte-identical at any setting.")

let workers =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:"Shard the summarize phase across N worker processes (0 = \
              in-process only, the default).  Workers exchange work and \
              summaries over a pipe protocol and publish results into the \
              shared --cache-dir tier; output is byte-identical at any \
              setting.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Persist per-procedure analysis results here, keyed by content \
              digests; repeated invocations only re-analyze what changed.")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print per-phase wall-clock/allocation statistics and cache \
              hit/miss counts for every analysis the driver runs.")

let stats_det =
  Arg.(
    value & flag
    & info [ "stats-det" ]
        ~doc:"Print the scheduling-independent statistics subset (no \
              wall-clock/allocation columns); byte-identical at any --jobs \
              setting, so suitable for diffing in CI.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record a hierarchical span trace of the invocation and write \
              it to FILE as Chrome trace_event JSON (open in Perfetto or \
              chrome://tracing, or render with dragon profile FILE).")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the metrics registry (named counters and latency \
              histograms with p50/p95/p99) to FILE as JSON.")

let log_level =
  let parse s =
    match Obs.Log.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown log level %S" s))
  in
  let print ppf l =
    Format.pp_print_string ppf
      (match l with
      | Obs.Log.Quiet -> "quiet"
      | Obs.Log.Info -> "info"
      | Obs.Log.Debug -> "debug")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Obs.Log.Quiet
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Structured key=value logging on stderr: quiet (default), \
              info, or debug.")

let keep_going =
  Arg.(
    value & flag
    & info [ "k"; "keep-going" ]
        ~doc:"Fault tolerance: skip unreadable or unparsable input files and \
              isolate procedures whose analysis fails to a conservative \
              opaque summary (whole-extent USE+DEF) instead of aborting; \
              every recovery is recorded as a diagnostic.")

let fault_specs =
  Arg.(
    value
    & opt_all string []
    & info [ "fault-spec" ] ~docv:"SITE:RATE:SEED[:ONLY]"
        ~doc:"Deterministic fault injection for testing the recovery paths \
              (repeatable).  SITE is store.read, store.write, store.marshal, \
              pool, solver, or all; RATE in [0,1]; SEED any integer; ONLY \
              restricts to injection keys containing the substring.  The \
              firing decision is a pure function of (seed, site, key), so \
              runs are reproducible at any --jobs setting.")

let diagnostics =
  Arg.(
    value
    & opt (some string) None
    & info [ "diagnostics" ] ~docv:"FILE"
        ~doc:"Write every recovery diagnostic of the run to FILE as JSON \
              (validate with bench check-json FILE).")

let solver_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "solver-budget" ] ~docv:"N"
        ~doc:"Per-query step budget for the linear solver; a query whose \
              cost (constraints times variables) exceeds N answers \
              conservatively from the interval box instead of running \
              Fourier-Motzkin.")

let join_path =
  Arg.(
    value
    & opt (enum [ ("fast", `Fast); ("reference", `Reference) ]) `Fast
    & info [ "join-path" ] ~docv:"PATH"
        ~doc:"Region-join implementation: fast (default) uses the \
              hash-consed short-circuits, bucketed summaries and the \
              entailment memo; reference restores the pre-interning join. \
              Outputs are byte-identical either way (the knob exists for \
              differential testing and bench regions).")

let solver_core =
  Arg.(
    value
    & opt
        (enum
           [ ("learned", `Learned); ("packed", `Packed);
             ("reference", `Reference) ])
        `Learned
    & info [ "solver-core" ] ~docv:"CORE"
        ~doc:"Feasibility solver core: learned (default) adds persistent \
              per-system contexts with Farkas-cut learning and \
              activity-ordered elimination on top of the packed integer \
              solver; packed is the packed solver alone; reference is the \
              exact rational eliminator. Outputs are byte-identical across \
              all three.")

let analyses =
  let parse s =
    match Analyses.Registry.parse_selection s with
    | Ok tokens -> Ok tokens
    | Error msg -> Error (`Msg msg)
  in
  let print ppf tokens = Format.pp_print_string ppf (String.concat "," tokens) in
  Arg.(
    value
    & opt (conv (parse, print)) []
    & info [ "analyses" ] ~docv:"NAMES"
        ~doc:"Comma-separated client analyses to run over the finished \
              interprocedural result: bounds (three-valued array bounds \
              verdicts + check elimination), permissions (per-procedure \
              read/write permission preconditions), regions (the .rgn \
              table as a report).  Each prints a table; see --report for \
              the JSON form.")

let report =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write the --analyses reports to FILE as schema-versioned \
              JSON (validate with bench check-json FILE); byte-identical \
              at any --jobs setting.")

let ledger =
  Arg.(
    value & flag
    & info [ "ledger" ]
        ~doc:"Append one schema-versioned run record (config/corpus \
              digests, timings, cache and solver counters, verdict \
              tallies, per-procedure content keys) to \
              CACHE-DIR/ledger/ — the history behind dragon \
              history/regress/explain.  On by default whenever \
              --cache-dir is set; this flag only matters together with \
              --no-ledger handling in scripts.")

let no_ledger =
  Arg.(
    value & flag
    & info [ "no-ledger" ]
        ~doc:"Disable the run ledger even when --cache-dir is set.")

(* ------------------------------------------------------------------ *)
(* uhc gen: emit a seeded corpus to a directory *)

let run_gen seed files pus dag scc loop_depth ext_min ext_max sparsity oob
    undeclared out =
  let cfg =
    {
      Corpus.Gen.g_seed = seed;
      g_files = files;
      g_pus_per_file = pus;
      g_dag_depth = dag;
      g_scc_density = scc;
      g_loop_depth = loop_depth;
      g_ext_min = ext_min;
      g_ext_max = ext_max;
      g_sparsity = sparsity;
      g_oob = oob;
      g_undeclared = undeclared;
    }
  in
  match Corpus.Gen.generate cfg with
  | exception Invalid_argument msg ->
    Printf.eprintf "uhc gen: %s\n" msg;
    1
  | sources ->
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iter
      (fun (name, contents) ->
        let oc = open_out_bin (Filename.concat out name) in
        output_string oc contents;
        close_out oc)
      sources;
    Printf.printf "wrote %d files (%s) to %s\n" (List.length sources)
      (Corpus.Gen.describe cfg) out;
    0

let gen_cmd =
  let d = Corpus.Gen.default in
  let seed =
    Arg.(
      value & opt int d.Corpus.Gen.g_seed
      & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed; same seed, same bytes.")
  in
  let files =
    Arg.(
      value & opt int d.Corpus.Gen.g_files
      & info [ "files" ] ~docv:"N" ~doc:"Source-file count.")
  in
  let pus =
    Arg.(
      value & opt int d.Corpus.Gen.g_pus_per_file
      & info [ "pus-per-file" ] ~docv:"N"
          ~doc:"Program units per file (main included).")
  in
  let dag =
    Arg.(
      value & opt int d.Corpus.Gen.g_dag_depth
      & info [ "dag-depth" ] ~docv:"N"
          ~doc:"Call-chain segment length / depth budget.")
  in
  let scc =
    Arg.(
      value & opt float d.Corpus.Gen.g_scc_density
      & info [ "scc-density" ] ~docv:"P"
          ~doc:"Probability of a recursion back-edge per chain link.")
  in
  let loop_depth =
    Arg.(
      value & opt int d.Corpus.Gen.g_loop_depth
      & info [ "loop-depth" ] ~docv:"N" ~doc:"Dense loop-nest depth.")
  in
  let ext_min =
    Arg.(
      value & opt int d.Corpus.Gen.g_ext_min
      & info [ "ext-min" ] ~docv:"N" ~doc:"Minimum per-file array extent.")
  in
  let ext_max =
    Arg.(
      value & opt int d.Corpus.Gen.g_ext_max
      & info [ "ext-max" ] ~docv:"N" ~doc:"Maximum per-file array extent.")
  in
  let sparsity =
    Arg.(
      value & opt float d.Corpus.Gen.g_sparsity
      & info [ "sparsity" ] ~docv:"P"
          ~doc:"Fraction of PUs accessing through an index array.")
  in
  let oob =
    Arg.(
      value & opt float d.Corpus.Gen.g_oob
      & info [ "oob" ] ~docv:"P"
          ~doc:"Fraction of sparse PUs whose index array really goes out of \
                bounds (runtime-inspector archetype).")
  in
  let undeclared =
    Arg.(
      value & opt float d.Corpus.Gen.g_undeclared
      & info [ "undeclared" ] ~docv:"P"
          ~doc:"Fraction of sparse PUs with no property directive.")
  in
  let out =
    Arg.(
      value & opt string "gen-corpus"
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Directory to write into.")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "emit a seeded, deterministic Fortran scale corpus (same seed, \
          byte-identical files); analyze the result with uhc *.f or use \
          --corpus gen for the pinned standard workload")
    Term.(
      const run_gen $ seed $ files $ pus $ dag $ scc $ loop_depth $ ext_min
      $ ext_max $ sparsity $ oob $ undeclared $ out)

let cmd =
  let doc = "analyze array regions in MiniF/MiniC programs (OpenUH-style)" in
  Cmd.v
    (Cmd.info "uhc" ~doc)
    Term.(
      const run $ paths $ corpus $ out_dir $ project $ dump_whirl $ dump_src
      $ dump_callgraph $ dump_summaries $ execute $ wopt $ ipl_dir $ fuse
      $ autopar $ emit_whirl $ loop_summaries $ jobs $ workers $ cache_dir
      $ stats
      $ stats_det $ trace $ metrics $ log_level $ keep_going $ fault_specs
      $ diagnostics $ solver_budget $ join_path $ solver_core $ analyses
      $ report $ ledger $ no_ledger)

(* [uhc gen ...] dispatches on the first word by hand: a [Cmd.group] with
   a default term would swallow positional source paths as (unknown)
   command names, and plain [uhc file.f] must keep working. *)
let () =
  Engine_shard.worker_check_argv ();
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "gen" then begin
    let argv =
      Array.append [| "uhc gen" |] (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
    in
    exit (Cmd.eval' ~argv gen_cmd)
  end
  else exit (Cmd.eval' cmd)
