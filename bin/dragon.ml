(* dragon: the viewer-side tool (steps 3-4 of the paper's usage: load the
   .dgn project, then browse the array-analysis table, the call graph, the
   CFGs, the sources, and the advisor's findings). *)

open Cmdliner

let load dir project =
  match Dragon.Project.load ~dir ~project with
  | Ok p -> p
  | Error e ->
    Printf.eprintf "dragon: %s\n" e;
    exit 1

let dir_arg =
  Arg.(
    value & opt dir "." & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Project directory.")

let project_arg =
  Arg.(
    value & opt string "project"
    & info [ "p"; "project" ] ~docv:"NAME" ~doc:"Project name (.dgn base).")

let table_cmd =
  let scope =
    Arg.(
      value
      & opt (some string) None
      & info [ "scope" ] ~docv:"PROC" ~doc:"Restrict to one procedure (or @).")
  in
  let find =
    Arg.(
      value
      & opt (some string) None
      & info [ "find" ] ~docv:"ARRAY" ~doc:"Highlight rows of this array.")
  in
  let color = Arg.(value & flag & info [ "color" ] ~doc:"ANSI colors.") in
  let sort =
    Arg.(
      value & opt string "source"
      & info [ "sort" ] ~docv:"KEY"
          ~doc:"Row order: source, density, refs, size, array.")
  in
  let modes =
    Arg.(
      value
      & opt (some string) None
      & info [ "mode" ] ~docv:"MODES"
          ~doc:"Comma-separated mode filter (e.g. USE,DEF).")
  in
  let run dir project scope find color sort modes =
    let p = load dir project in
    let sort =
      match Dragon.Table.sort_key_of_string sort with
      | Some k -> k
      | None ->
        Printf.eprintf "dragon: unknown sort key %S\n" sort;
        exit 1
    in
    let modes = Option.map (String.split_on_char ',') modes in
    let options = { Dragon.Table.default_options with color; sort; modes } in
    print_string (Dragon.Table.render ~options ?scope ?find p)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Show the array analysis graph (tabular view).")
    Term.(const run $ dir_arg $ project_arg $ scope $ find $ color $ sort $ modes)

let callgraph_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT.") in
  let run dir project dot =
    let p = load dir project in
    print_string
      (if dot then Dragon.Graphs.callgraph_dot p
       else Dragon.Graphs.callgraph_ascii p)
  in
  Cmd.v
    (Cmd.info "callgraph" ~doc:"Show the call graph (Fig 11).")
    Term.(const run $ dir_arg $ project_arg $ dot)

let cfg_cmd =
  let proc = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROC") in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT.") in
  let run dir project proc dot =
    let p = load dir project in
    let view = if dot then Dragon.Graphs.cfg_dot else Dragon.Graphs.cfg_ascii in
    match view p ~proc with
    | Some s -> print_string s
    | None ->
      Printf.eprintf "dragon: no CFG for %s\n" proc;
      exit 1
  in
  Cmd.v
    (Cmd.info "cfg" ~doc:"Show a procedure's control-flow graph.")
    Term.(const run $ dir_arg $ project_arg $ proc $ dot)

let grep_cmd =
  let needle = Arg.(required & pos 0 (some string) None & info [] ~docv:"TEXT") in
  let word =
    Arg.(value & flag & info [ "w"; "word" ] ~doc:"Whole-word (array) match.")
  in
  let run dir project needle word =
    let p = load dir project in
    let hits =
      if word then Dragon.Browse.grep_array p needle
      else Dragon.Browse.grep p needle
    in
    List.iter
      (fun h ->
        Printf.printf "%s:%d: %s\n" h.Dragon.Browse.h_file
          h.Dragon.Browse.h_line h.Dragon.Browse.h_text)
      hits;
    Printf.printf "%d hit(s)\n" (List.length hits)
  in
  Cmd.v
    (Cmd.info "grep" ~doc:"Search the project sources (the GUI's grep box).")
    Term.(const run $ dir_arg $ project_arg $ needle $ word)

let locate_cmd =
  let array = Arg.(required & pos 0 (some string) None & info [] ~docv:"ARRAY") in
  let run dir project array =
    let p = load dir project in
    let rows = Dragon.Table.find_rows p array in
    if rows = [] then begin
      Printf.eprintf "dragon: no rows for array %s\n" array;
      exit 1
    end;
    List.iter
      (fun (r : Rgnfile.Row.t) ->
        Printf.printf "%s %s [%s:%s:%s] at %s line %d\n" r.Rgnfile.Row.array
          r.Rgnfile.Row.mode r.Rgnfile.Row.lb r.Rgnfile.Row.ub
          r.Rgnfile.Row.stride r.Rgnfile.Row.file r.Rgnfile.Row.line;
        match Dragon.Browse.locate_row p r with
        | Some excerpt -> print_string excerpt
        | None -> ())
      rows
  in
  Cmd.v
    (Cmd.info "locate" ~doc:"Show each access of an array in the source.")
    Term.(const run $ dir_arg $ project_arg $ array)

let diff_cmd =
  let before =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BEFORE.rgn")
  in
  let after =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER.rgn")
  in
  let run before after =
    let load_rows path =
      match Rgnfile.Files.parse_rgn (Rgnfile.Files.load ~path) with
      | Ok rows -> rows
      | Error e ->
        Printf.eprintf "dragon: %s: %s\n" path e;
        exit 1
    in
    let d = Dragon.Diff.diff (load_rows before) (load_rows after) in
    print_string (Dragon.Diff.render d);
    if Dragon.Diff.is_empty d then exit 0 else exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two .rgn files (e.g. before/after a transformation).")
    Term.(const run $ before $ after)

let browse_cmd =
  let run dir project =
    let p = load dir project in
    Dragon.Repl.run p
  in
  Cmd.v
    (Cmd.info "browse"
       ~doc:"Interactive browser: table/find/grep/locate/callgraph/cfg/advise \
             commands over the loaded project.")
    Term.(const run $ dir_arg $ project_arg)

let html_cmd =
  let out =
    Arg.(
      value & opt string "dragon.html"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output HTML file.")
  in
  let run dir project out =
    let p = load dir project in
    Dragon.Html.save p ~path:out;
    Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "html"
       ~doc:"Write a self-contained HTML report (table with live find, call \
             graph, sources, advisor).")
    Term.(const run $ dir_arg $ project_arg $ out)

let profile_cmd =
  let trace_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.json")
  in
  let top =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N"
          ~doc:"Rows per table (0 = all); the phase table is never cut.")
  in
  let folded =
    Arg.(
      value & flag
      & info [ "folded" ]
          ~doc:"Emit collapsed stacks (one line per stack, \
                $(i,phase;parent;leaf self_us)) instead of tables — the \
                input format of flamegraph.pl / inferno / speedscope.")
  in
  let run path top folded =
    let rendered =
      if folded then Dragon.Profile.folded_of_file ~path
      else Dragon.Profile.of_file ~top ~path ()
    in
    match rendered with
    | Ok s -> print_string s
    | Error e ->
      Printf.eprintf "dragon: %s: %s\n" path e;
      exit 1
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Render a uhc --trace file as sorted per-phase/per-PU tables \
             (or collapsed flamegraph stacks with $(b,--folded)).")
    Term.(const run $ trace_file $ top $ folded)

let report_cmd =
  let report_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"REPORT.json")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "analysis" ] ~docv:"NAME"
          ~doc:"Show only this analysis (e.g. bounds); default all.")
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List the analyses present.")
  in
  let run path only list_only =
    match Dragon.Reportview.parse_file ~path with
    | Error e ->
      Printf.eprintf "dragon: %s: %s\n" path e;
      exit 1
    | Ok t ->
      if list_only then
        List.iter print_endline (Dragon.Reportview.names t)
      else begin
        (match only with
        | Some name when not (List.mem name (Dragon.Reportview.names t)) ->
          Printf.eprintf "dragon: no %S report in %s (have: %s)\n" name path
            (String.concat ", " (Dragon.Reportview.names t));
          exit 1
        | _ -> ());
        print_string (Dragon.Reportview.render ?only t)
      end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a uhc --report JSON file (client-analysis verdicts and \
             permission preconditions) as tables.")
    Term.(const run $ report_file $ only $ list_only)

(* ---- run-ledger consumers (uhc --cache-dir writes the records) ------ *)

let cache_dir_arg =
  Arg.(
    required
    & opt (some dir) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"The uhc --cache-dir whose ledger/ subdirectory holds the run \
              records.")

let load_ledger cache_dir =
  match Dragon.Ledgerview.load ~cache_dir with
  | Ok runs -> runs
  | Error e ->
    Printf.eprintf "dragon: %s\n" e;
    exit 1

let history_cmd =
  let metrics =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"METRIC"
          ~doc:"Dotted paths into the records, e.g. wall_s, \
                cache.summary_misses, solver.queries, topology.steals, \
                verdicts.bounds.unsafe; default wall_s.")
  in
  let last =
    Arg.(
      value & opt int 10
      & info [ "last" ] ~docv:"N" ~doc:"Show the newest N runs (default 10).")
  in
  let run cache_dir metrics last =
    let runs = load_ledger cache_dir in
    let metrics = if metrics = [] then [ "wall_s" ] else metrics in
    print_string (Dragon.Ledgerview.history ~last ~metrics runs)
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"Trend tables with sparklines over the recorded runs of a uhc \
             cache directory.")
    Term.(const run $ cache_dir_arg $ metrics $ last)

let regress_cmd =
  let thresholds =
    Arg.(
      value
      & opt_all string []
      & info [ "threshold" ] ~docv:"PATH=PCT"
          ~doc:"Allow metric PATH to exceed the baseline by PCT percent \
                (repeatable); 0 forbids any increase, a negative value \
                demands a decrease.  Default: the deterministic gates \
                verdicts.bounds.unsafe=0, verdicts.bounds.maybe=0, \
                diagnostics=0.")
  in
  let baseline =
    Arg.(
      value & opt int 1
      & info [ "baseline" ] ~docv:"N"
          ~doc:"Average the N same-config runs preceding the candidate \
                (default 1).")
  in
  let run cache_dir thresholds baseline =
    let rules =
      List.map
        (fun s ->
          match Dragon.Ledgerview.parse_rule s with
          | Ok r -> r
          | Error e ->
            Printf.eprintf "dragon: %s\n" e;
            exit 2)
        thresholds
    in
    let runs = load_ledger cache_dir in
    match Dragon.Ledgerview.regress ~baseline ~rules runs with
    | Error e ->
      Printf.eprintf "dragon: %s\n" e;
      exit 2
    | Ok (report, breached) ->
      print_string report;
      exit (if breached then 1 else 0)
  in
  Cmd.v
    (Cmd.info "regress"
       ~doc:"Gate the newest recorded run against its predecessors: exits 1 \
             when any threshold is breached, 0 otherwise (a CI gate).")
    Term.(const run $ cache_dir_arg $ thresholds $ baseline)

let explain_cmd =
  let target =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"PU|FILE"
          ~doc:"A procedure name, a recorded source path, or a file \
                basename.")
  in
  let run cache_dir target =
    let runs = load_ledger cache_dir in
    match Dragon.Ledgerview.explain ~target runs with
    | Ok s -> print_string s
    | Error e ->
      Printf.eprintf "dragon: %s\n" e;
      exit 1
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Why was this procedure re-analyzed in the newest run?  Names \
             the changed content key (own body vs which callee), the blast \
             radius, and the verdict delta.")
    Term.(const run $ cache_dir_arg $ target)

let advise_cmd =
  let run dir project =
    let p = load dir project in
    print_string (Dragon.Advisor.render p)
  in
  Cmd.v
    (Cmd.info "advise" ~doc:"Print optimization guidance derived from the table.")
    Term.(const run $ dir_arg $ project_arg)

let main =
  let doc = "interactive array-region analysis viewer (Dragon)" in
  Cmd.group
    (Cmd.info "dragon" ~doc)
    [ table_cmd; callgraph_cmd; cfg_cmd; grep_cmd; locate_cmd; advise_cmd; html_cmd;
      browse_cmd; diff_cmd; profile_cmd; report_cmd; history_cmd; regress_cmd;
      explain_cmd ]

let () = exit (Cmd.eval main)
