#!/bin/sh
# Repo verification: full build, format check (when available), tests, and
# an end-to-end uhc smoke run through the parallel engine.
set -e
cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== dune runtest =="
OCAMLRUNPARAM=b dune runtest

echo "== smoke: uhc --corpus lu --jobs 4 =="
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
dune exec bin/uhc.exe -- --corpus lu -o "$out" --jobs 4 --stats
test -s "$out/project.rgn"
test -s "$out/project.dgn"

echo "== smoke: bench solver --json =="
dune exec bench/main.exe -- solver --json --out "$out/BENCH_solver.json"
test -s "$out/BENCH_solver.json"
dune exec bench/main.exe -- check-json "$out/BENCH_solver.json"

echo "verify: OK"
