#!/bin/sh
# Repo verification: full build, format check (when available), tests, and
# an end-to-end uhc smoke run through the parallel engine.
set -e
cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== dune runtest =="
OCAMLRUNPARAM=b dune runtest

echo "== smoke: uhc --corpus lu --jobs 4 =="
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
dune exec bin/uhc.exe -- --corpus lu -o "$out" --jobs 4 --stats
test -s "$out/project.rgn"
test -s "$out/project.dgn"

echo "== smoke: bench solver --json =="
dune exec bench/main.exe -- solver --json --out "$out/BENCH_solver.json"
test -s "$out/BENCH_solver.json"
dune exec bench/main.exe -- check-json "$out/BENCH_solver.json"

echo "== smoke: bench regions --json =="
dune exec bench/main.exe -- regions --json --out "$out/BENCH_regions.json"
test -s "$out/BENCH_regions.json"
dune exec bench/main.exe -- check-json "$out/BENCH_regions.json"

echo "== smoke: bench bounds --json =="
dune exec bench/main.exe -- bounds --json --out "$out/BENCH_bounds.json"
test -s "$out/BENCH_bounds.json"
dune exec bench/main.exe -- check-json "$out/BENCH_bounds.json"

echo "== smoke: uhc --analyses report is jobs-invariant =="
dune exec bin/uhc.exe -- --corpus lu --analyses bounds,permissions \
  --report "$out/report1.json" --jobs 1 >/dev/null
dune exec bin/uhc.exe -- --corpus lu --analyses bounds,permissions \
  --report "$out/report4.json" --jobs 4 >/dev/null
cmp "$out/report1.json" "$out/report4.json"
dune exec bench/main.exe -- check-json "$out/report1.json"
dune exec bin/dragon.exe -- report "$out/report1.json" | grep -q "== analysis: bounds =="

echo "== smoke: uhc --join-path reference is byte-identical =="
dune exec bin/uhc.exe -- --corpus lu -o "$out/jfast" --jobs 4 >/dev/null
dune exec bin/uhc.exe -- --corpus lu --join-path reference -o "$out/jref" \
  --jobs 4 >/dev/null
cmp "$out/jfast/project.rgn" "$out/jref/project.rgn"
cmp "$out/jfast/project.dgn" "$out/jref/project.dgn"
cmp "$out/jfast/project.cfg" "$out/jref/project.cfg"

echo "== smoke: uhc --solver-core {learned,packed,reference} byte-identical =="
# jfast above is the learned default; the other two cores must match it
for core in packed reference; do
  dune exec bin/uhc.exe -- --corpus lu --solver-core "$core" \
    -o "$out/core_$core" --jobs 4 >/dev/null
  cmp "$out/jfast/project.rgn" "$out/core_$core/project.rgn"
  cmp "$out/jfast/project.dgn" "$out/core_$core/project.dgn"
  cmp "$out/jfast/project.cfg" "$out/core_$core/project.cfg"
done

echo "== smoke: uhc --trace/--metrics + dragon profile =="
dune exec bin/uhc.exe -- --corpus matrix --jobs 2 \
  --trace "$out/trace.json" --metrics "$out/metrics.json" \
  --log-level info -o "$out" 2>"$out/log.err"
test -s "$out/trace.json"
test -s "$out/metrics.json"
grep -q "^info pipeline.done" "$out/log.err"
dune exec bench/main.exe -- check-json "$out/trace.json" "$out/metrics.json"
dune exec bin/dragon.exe -- profile "$out/trace.json" | grep -q "^phases"

echo "== smoke: uhc --keep-going --fault-spec + diagnostics JSON =="
dune exec bin/uhc.exe -- --corpus lu --keep-going \
  --fault-spec all:0.1:42 --diagnostics "$out/diag.json" \
  -o "$out/faulted" --jobs 2 --cache-dir "$out/fcache"
test -s "$out/diag.json"
dune exec bench/main.exe -- check-json "$out/diag.json"
# rate 0 under --keep-going must be byte-identical to the plain run
dune exec bin/uhc.exe -- --corpus lu -o "$out/plain" --jobs 4 >/dev/null
dune exec bin/uhc.exe -- --corpus lu --keep-going --fault-spec all:0.0:1 \
  -o "$out/zero" --jobs 4 >/dev/null
cmp "$out/plain/project.rgn" "$out/zero/project.rgn"
cmp "$out/plain/project.dgn" "$out/zero/project.dgn"
cmp "$out/plain/project.cfg" "$out/zero/project.cfg"

echo "== smoke: run ledger + dragon history/explain/regress =="
# two identical runs into one cache directory: the second is all cache
# hits, and the default (deterministic-only) regress gates must pass
dune exec bin/uhc.exe -- --corpus lu --analyses bounds \
  --cache-dir "$out/lcache" -o "$out/lrun1" >/dev/null
dune exec bin/uhc.exe -- --corpus lu --analyses bounds \
  --cache-dir "$out/lcache" -o "$out/lrun2" >/dev/null
cmp "$out/lrun1/project.rgn" "$out/lrun2/project.rgn"
dune exec bench/main.exe -- check-json "$out/lcache"/ledger/*.jsonl
dune exec bin/dragon.exe -- history --cache-dir "$out/lcache" \
  wall_s cache.summary_hits | grep -q "^cache.summary_hits"
dune exec bin/dragon.exe -- explain --cache-dir "$out/lcache" applu.f \
  | grep -q "served from cache"
dune exec bin/dragon.exe -- regress --cache-dir "$out/lcache"
# an injected breach (a negative threshold demands a decrease, so the
# identical rerun violates it) must flip the exit code to 1
if dune exec bin/dragon.exe -- regress --cache-dir "$out/lcache" \
    --threshold verdicts.bounds.safe=-50 >/dev/null; then
  echo "regress failed to flag an injected breach" >&2
  exit 1
fi
# ledger off (--no-ledger) leaves outputs byte-identical and writes nothing
dune exec bin/uhc.exe -- --corpus lu --analyses bounds --no-ledger \
  --cache-dir "$out/lcache" -o "$out/lrun3" >/dev/null
cmp "$out/lrun1/project.rgn" "$out/lrun3/project.rgn"
test "$(ls "$out/lcache/ledger" | wc -l)" = 2

echo "== smoke: uhc gen -> analyze -> diffcheck -> dragon regress =="
# the seeded generator round trip: emit a small corpus to disk, analyze the
# files with the differential harness, and gate through the run ledger
dune exec bin/uhc.exe -- gen --seed 42 --files 4 --pus-per-file 3 \
  -o "$out/gencorpus" | grep -q "wrote 4 files"
# twice into one cache: the rerun is the regress baseline
dune exec bin/uhc.exe -- "$out/gencorpus"/*.f --analyses bounds,diffcheck \
  --report "$out/genreport.json" --cache-dir "$out/gcache" \
  -o "$out/genout" --jobs 2 >/dev/null
dune exec bin/uhc.exe -- "$out/gencorpus"/*.f --analyses bounds,diffcheck \
  --report "$out/genreport2.json" --cache-dir "$out/gcache" \
  -o "$out/genout2" --jobs 2 >/dev/null
cmp "$out/genreport.json" "$out/genreport2.json"
dune exec bench/main.exe -- check-json "$out/genreport.json"
grep -q '"analysis": "diffcheck"' "$out/genreport.json"
dune exec bin/dragon.exe -- regress --cache-dir "$out/gcache"

echo "== smoke: bench gen --json =="
dune exec bench/main.exe -- gen --json --out "$out/BENCH_gen.json" >/dev/null
test -s "$out/BENCH_gen.json"
dune exec bench/main.exe -- check-json "$out/BENCH_gen.json"

echo "== smoke: dragon profile --folded =="
dune exec bin/dragon.exe -- profile --folded "$out/trace.json" \
  | grep -q "^pipeline;"

echo "== obs: duplicate metric registration is rejected =="
# the "metrics registry" case re-registers a name as a different instrument
# kind and fails unless Obs.Metrics raises Invalid_argument
dune exec test/test_main.exe -- test obs 8

echo "== smoke: uhc --workers 2 is byte-identical =="
dune exec bin/uhc.exe -- --corpus lu --workers 2 -o "$out/w2" >/dev/null
cmp "$out/plain/project.rgn" "$out/w2/project.rgn"
cmp "$out/plain/project.dgn" "$out/w2/project.dgn"
cmp "$out/plain/project.cfg" "$out/w2/project.cfg"

echo "== smoke: sharded cold + warm share one cache tier =="
# a cold sharded run publishes every summary; a warm run at a different
# worker count recomputes nothing and the default regress gates (which
# include cache.summary_misses) stay green across the topology change
dune exec bin/uhc.exe -- --corpus gen-small --workers 2 \
  --cache-dir "$out/scache" -o "$out/s1" >/dev/null
dune exec bin/uhc.exe -- --corpus gen-small --workers 4 \
  --cache-dir "$out/scache" -o "$out/s2" >/dev/null
cmp "$out/s1/project.rgn" "$out/s2/project.rgn"
cmp "$out/s1/project.dgn" "$out/s2/project.dgn"
cmp "$out/s1/project.cfg" "$out/s2/project.cfg"
dune exec bin/dragon.exe -- regress --cache-dir "$out/scache"
dune exec bin/dragon.exe -- history --cache-dir "$out/scache" \
  topology.steals | grep -q "^topology.steals"

echo "== smoke: bench shard --json =="
dune exec bench/main.exe -- shard --json --out "$out/BENCH_shard.json" >/dev/null
test -s "$out/BENCH_shard.json"
dune exec bench/main.exe -- check-json "$out/BENCH_shard.json"

echo "verify: OK"
